"""The structured tracer: spans and instants on the simulated clock.

A :class:`Recorder` receives what the event loops, schedulers, routers
and the KV memory model *decide* — request phases as spans, verdicts as
instant events — all timestamped in **simulated seconds**, never wall
clock.  That keeps recording deterministic: the same seed emits the same
event stream byte for byte, and attaching a recorder never perturbs the
simulation itself (every emission is a read-only observation).

Two implementations ship:

* :class:`NullRecorder` — the disabled default.  ``enabled`` is False,
  so the loops skip every emission site entirely; a ``recorder=None``
  (or NullRecorder) run pays nothing and stays byte-identical to the
  hash-pinned golden traces.
* :class:`SpanRecorder` — appends every event to an in-memory list and
  exports Chrome/Perfetto trace-event JSON (:meth:`SpanRecorder.to_perfetto`)
  that ``chrome://tracing`` and https://ui.perfetto.dev load directly.

Tracks
------

Every event names a *track* (a string): the loops use ``"device"`` /
``"device3"`` for occupancy spans, ``"requests"`` for per-request phase
spans, ``"router"`` for routing decisions and ``"memory"`` /
``"memory3"`` for the flash-backed KV model.  The Perfetto export maps
tracks to thread ids in first-appearance order (deterministic) and
labels them with ``thread_name`` metadata events.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Request-phase span names (the per-request timeline vocabulary).
QUEUE = "QUEUE"
PREFILL = "PREFILL"
DECODE = "DECODE"
REFILL = "REFILL"


class Recorder:
    """Base protocol: all emissions are no-ops.

    ``enabled`` gates every emission site in the event loops: a recorder
    that reports False is never handed into the hot paths at all, so the
    disabled configuration costs literally zero per-event work.
    """

    enabled = False

    def span(
        self,
        track: str,
        name: str,
        start_s: float,
        end_s: float,
        args: Optional[dict] = None,
    ) -> None:
        """A closed interval ``[start_s, end_s]`` on ``track``."""

    def instant(
        self, track: str, name: str, ts_s: float, args: Optional[dict] = None
    ) -> None:
        """A point event at ``ts_s`` on ``track``."""

    def finalize_run(self, makespan_s: float):
        """Called by the event loops once, after the last event.

        Recorders that accumulate time-resolved state (the
        :class:`~repro.obs.timeline.TimelineCollector`) close their
        windows here and may return a payload the loop surfaces on its
        report (an :class:`~repro.obs.alerts.AlertLog`).  The base
        recorder — and :class:`SpanRecorder` — has nothing to finalize
        and returns None.
        """
        return None


class NullRecorder(Recorder):
    """The zero-overhead default: records nothing, enables nothing."""

    __slots__ = ()


class TeeRecorder(Recorder):
    """Fans every emission out to several recorders.

    Compose a :class:`SpanRecorder` (raw spans, Perfetto export,
    critical-path input) with a
    :class:`~repro.obs.timeline.TimelineCollector` (windowed series,
    alerts) on one ``recorder=`` seam.  Disabled children are dropped at
    construction; a tee with no enabled children reports ``enabled``
    False and costs the loops nothing.  :meth:`finalize_run` forwards to
    every child and returns the first non-None payload (child order).
    """

    __slots__ = ("recorders", "enabled")

    def __init__(self, *recorders: Optional[Recorder]) -> None:
        self.recorders = tuple(
            recorder
            for recorder in recorders
            if recorder is not None and recorder.enabled
        )
        self.enabled = bool(self.recorders)

    def span(
        self,
        track: str,
        name: str,
        start_s: float,
        end_s: float,
        args: Optional[dict] = None,
    ) -> None:
        for recorder in self.recorders:
            recorder.span(track, name, start_s, end_s, args)

    def instant(
        self, track: str, name: str, ts_s: float, args: Optional[dict] = None
    ) -> None:
        for recorder in self.recorders:
            recorder.instant(track, name, ts_s, args)

    def finalize_run(self, makespan_s: float):
        result = None
        for recorder in self.recorders:
            payload = recorder.finalize_run(makespan_s)
            if result is None:
                result = payload
        return result


#: Internal event tuples: ("X", track, name, start_s, dur_s, args) for
#: spans and ("i", track, name, ts_s, None, args) for instants.
_Event = Tuple[str, str, str, float, Optional[float], Optional[dict]]


class SpanRecorder(Recorder):
    """Collects spans and instants; exports Perfetto/Chrome trace JSON.

    Events are stored in emission order, which the single-threaded event
    loops make deterministic under a fixed seed; :meth:`to_perfetto`
    serializes with sorted keys and fixed separators, so the exported
    JSON is byte-stable across runs and machines.
    """

    enabled = True

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[_Event] = []

    def __len__(self) -> int:
        return len(self.events)

    def span(
        self,
        track: str,
        name: str,
        start_s: float,
        end_s: float,
        args: Optional[dict] = None,
    ) -> None:
        self.events.append(("X", track, name, start_s, end_s - start_s, args))

    def instant(
        self, track: str, name: str, ts_s: float, args: Optional[dict] = None
    ) -> None:
        self.events.append(("i", track, name, ts_s, None, args))

    # -- queries -------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[_Event]:
        """Span events, optionally filtered by name."""
        return [
            event
            for event in self.events
            if event[0] == "X" and (name is None or event[2] == name)
        ]

    def instants(self, name: Optional[str] = None) -> List[_Event]:
        """Instant events, optionally filtered by name."""
        return [
            event
            for event in self.events
            if event[0] == "i" and (name is None or event[2] == name)
        ]

    def tracks(self) -> List[str]:
        """Distinct track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event[1], None)
        return list(seen)

    def top_spans(self, n: int = 10) -> List[Tuple[str, float, int]]:
        """``(name, total seconds, count)`` of the heaviest span names.

        Ranked by total duration descending; ties break by each name's
        *first occurrence* — its track, then its start time, then the
        name itself — so the ranking is fully deterministic even when
        two span names happen to cost exactly the same simulated time.
        """
        totals: Dict[str, List[object]] = {}
        for kind, track, name, start, duration, _args in self.events:
            if kind != "X":
                continue
            bucket = totals.get(name)
            if bucket is None:
                totals[name] = [duration, 1, track, start]
            else:
                bucket[0] += duration
                bucket[1] += 1
        ranked = sorted(
            totals.items(),
            key=lambda item: (-item[1][0], item[1][2], item[1][3], item[0]),
        )
        return [
            (name, total, int(count))
            for name, (total, count, _track, _start) in ranked[:n]
        ]

    # -- export --------------------------------------------------------------
    def to_perfetto(self, path: Optional[str] = None) -> str:
        """The trace as Chrome trace-event JSON (Perfetto-loadable).

        Simulated seconds map to trace microseconds (``ts = 1e6 * s``);
        tracks become threads of one process, named via ``thread_name``
        metadata.  Serialization uses sorted keys and compact separators,
        so the same event stream always renders the same bytes.
        """
        tids: Dict[str, int] = {}
        trace_events: List[dict] = []
        for track in self.tracks():
            tid = tids[track] = len(tids)
            trace_events.append(
                {
                    "args": {"name": track},
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                }
            )
        for kind, track, name, ts_s, dur_s, args in self.events:
            event = {
                "args": args if args is not None else {},
                "name": name,
                "ph": kind,
                "pid": 0,
                "tid": tids[track],
                "ts": 1e6 * ts_s,
            }
            if kind == "X":
                event["dur"] = 1e6 * dur_s
            else:
                event["s"] = "t"
            trace_events.append(event)
        text = json.dumps(
            {"displayTimeUnit": "ms", "traceEvents": trace_events},
            sort_keys=True,
            separators=(",", ":"),
        )
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
                handle.write("\n")
        return text


def record_request_phases(
    recorder: Recorder, track: str, record, extra: Optional[dict] = None
) -> None:
    """Emit the QUEUE/PREFILL/DECODE spans one finished record defines.

    Guards every stamp: a partially-stamped record (from an early-exited
    run) contributes only the phases it actually entered, mirroring how
    the trace CSV leaves its cells blank.  Records that expose their
    payload (``record.request``) also stamp ``gen_tokens`` into the span
    args, which lets the timeline derive per-token decode latencies.
    """
    args = {"request_id": record.request_id}
    source = getattr(record, "request", None)
    if source is not None:
        args["gen_tokens"] = source.gen_tokens
    if extra:
        args.update(extra)
    arrival = record.arrival_s
    prefill_start = record.prefill_start_s
    first_token = record.first_token_s
    finish = record.finish_s
    if prefill_start is not None:
        recorder.span(track, QUEUE, arrival, prefill_start, args)
        if first_token is not None:
            recorder.span(track, PREFILL, prefill_start, first_token, args)
            if finish is not None:
                recorder.span(track, DECODE, first_token, finish, args)
