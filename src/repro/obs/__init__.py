"""repro.obs — deterministic tracing, metrics, and profiling hooks.

Six independent instruments over the serving/fleet/memory stack:

* :mod:`repro.obs.recorder` — sim-time span/instant tracer with a
  zero-overhead disabled default, byte-stable Perfetto export, and a
  :class:`TeeRecorder` for composing observers on one seam;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms behind
  one :class:`MetricsSnapshot` with Prometheus text exposition;
* :mod:`repro.obs.timeline` — a :class:`TimelineCollector` folding the
  emission stream into fixed-width windows on the simulated clock
  (rates, goodput, queue depth, utilization, KV traffic, exact
  per-window latency percentiles) with CSV and gauge-view exports;
* :mod:`repro.obs.alerts` — declarative threshold / sustained /
  SLO-burn-rate rules evaluated as windows close, yielding a
  deterministic :class:`AlertLog` of fire/resolve events;
* :mod:`repro.obs.critpath` — :func:`critical_path` attribution over a
  recorded span stream: per-request and tail phase breakdowns, flash
  I/O shares, and each device's makespan-critical occupancy chain;
* :mod:`repro.obs.profile` — opt-in *wall-clock* phase timers
  (explicitly outside the determinism guarantee).

The cardinal rule, enforced by the byte-identity test battery: attaching
any of these never changes what the simulation computes — traces,
reports and makespans are identical with and without observers.
"""

from repro.obs.alerts import (
    AlertEvent,
    AlertLog,
    AlertRule,
    BurnRateRule,
    SustainedRule,
    ThresholdRule,
    burn_rate_pack,
    evaluate_alerts,
)
from repro.obs.critpath import (
    CriticalPathReport,
    OccupancyChain,
    RequestAttribution,
    critical_path,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    fleet_snapshot,
    serving_snapshot,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import (
    DECODE,
    PREFILL,
    QUEUE,
    REFILL,
    NullRecorder,
    Recorder,
    SpanRecorder,
    TeeRecorder,
    record_request_phases,
)
from repro.obs.timeline import TIMELINE_CSV_FIELDS, TimelineCollector

__all__ = [
    "AlertEvent",
    "AlertLog",
    "AlertRule",
    "BurnRateRule",
    "Counter",
    "CriticalPathReport",
    "DECODE",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "OccupancyChain",
    "PhaseProfiler",
    "PREFILL",
    "QUEUE",
    "Recorder",
    "REFILL",
    "RequestAttribution",
    "SpanRecorder",
    "SustainedRule",
    "TeeRecorder",
    "ThresholdRule",
    "TIMELINE_CSV_FIELDS",
    "TimelineCollector",
    "burn_rate_pack",
    "critical_path",
    "evaluate_alerts",
    "fleet_snapshot",
    "record_request_phases",
    "serving_snapshot",
]
