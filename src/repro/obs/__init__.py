"""repro.obs — deterministic tracing, metrics, and profiling hooks.

Three independent instruments over the serving/fleet/memory stack:

* :mod:`repro.obs.recorder` — sim-time span/instant tracer with a
  zero-overhead disabled default and byte-stable Perfetto export;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms behind
  one :class:`MetricsSnapshot` with Prometheus text exposition;
* :mod:`repro.obs.profile` — opt-in *wall-clock* phase timers
  (explicitly outside the determinism guarantee).

The cardinal rule, enforced by the byte-identity test battery: attaching
any of these never changes what the simulation computes — traces,
reports and makespans are identical with and without observers.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    fleet_snapshot,
    serving_snapshot,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import (
    DECODE,
    PREFILL,
    QUEUE,
    REFILL,
    NullRecorder,
    Recorder,
    SpanRecorder,
    record_request_phases,
)

__all__ = [
    "Counter",
    "DECODE",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "PhaseProfiler",
    "PREFILL",
    "QUEUE",
    "Recorder",
    "REFILL",
    "SpanRecorder",
    "fleet_snapshot",
    "record_request_phases",
    "serving_snapshot",
]
