"""Time-resolved telemetry: recorder emissions folded into fixed windows.

A :class:`TimelineCollector` is a :class:`~repro.obs.recorder.Recorder`
that answers *what was true at time t* instead of *what happened over
the whole run*.  It consumes the exact emission vocabulary the event
loops, schedulers and memory models already produce — request
QUEUE/PREFILL/DECODE phase spans on the ``"requests"`` track, occupancy
spans on device tracks, spill/refill/dram instants on memory tracks —
and folds them into fixed-width windows on the **simulated** clock:

* arrival and completion counts (and rates) per window,
* goodput (SLO-meeting completions per second) when an
  :class:`~repro.serving.metrics.SLOSpec` is attached,
* time-weighted mean and max queueing depth, from an exact sweep over
  the QUEUE-span endpoints,
* device-busy seconds and utilization (occupancy spans distributed
  across the windows they overlap),
* KV spill/refill bytes and the DRAM occupancy level (from the
  scheduler's ``"dram"`` instants, carried forward across quiet windows),
* exact per-window TTFT/TPOT/e2e reservoirs, reduced to p50/p95/p99,
* fault-engine lifecycle counts (total fault events plus shed / retried /
  timed-out / failed requests, from the ``"faults"``-track instants the
  :mod:`repro.faults` engine emits; blank columns on fault-free runs).

Everything is derived from the deterministic event stream, so the rows,
the CSV (:meth:`TimelineCollector.to_csv`) and the per-window gauge view
(:meth:`TimelineCollector.to_registry` — the PR-8 Prometheus path,
unchanged) are seed-stable byte for byte.  And like every recorder,
attaching a collector never changes what the simulation computes: it
only reads the floats the loops already produced.

Alert rules (see :mod:`repro.obs.alerts`) attached at construction are
evaluated window-by-window when the run finalizes, yielding the
deterministic :class:`~repro.obs.alerts.AlertLog` the event loops
surface on ``ServingReport.alerts`` / ``FleetReport.alerts``.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.alerts import AlertLog, evaluate_alerts
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.recorder import DECODE, QUEUE, Recorder

#: Column order of :meth:`TimelineCollector.to_csv`; one row per window.
#: Cells without a defined value (no SLO attached, no memory model, an
#: empty reservoir) render blank, exactly like the trace CSV's cells.
TIMELINE_CSV_FIELDS = [
    "window",
    "start_s",
    "end_s",
    "arrivals",
    "completions",
    "arrival_qps",
    "completion_qps",
    "goodput_qps",
    "slo_met",
    "queue_depth_mean",
    "queue_depth_max",
    "busy_s",
    "utilization",
    "ttft_p50_s",
    "ttft_p95_s",
    "ttft_p99_s",
    "tpot_p50_s",
    "tpot_p95_s",
    "tpot_p99_s",
    "e2e_p50_s",
    "e2e_p95_s",
    "e2e_p99_s",
    "kv_spill_bytes",
    "kv_refill_bytes",
    "kv_dram_peak_bytes",
    "fault_events",
    "shed",
    "retries",
    "timed_out",
    "failed",
]

#: The track :func:`repro.obs.recorder.record_request_phases` is called
#: with by both event loops; spans here are request phases, spans on any
#: other track are device occupancies.
_PHASE_TRACK = "requests"


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile, matching ``ServingReport``'s
    (:func:`repro.serving.metrics.percentile_of_sorted` — re-implemented
    here because ``repro.serving`` imports this package)."""
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class _Window:
    """One window's accumulators while the run is still emitting."""

    __slots__ = (
        "arrivals",
        "completions",
        "slo_met",
        "ttfts",
        "tpots",
        "e2es",
        "busy_s",
        "spill_bytes",
        "refill_bytes",
        "dram_peak",
        "dram_last",
        "fault_events",
        "shed",
        "retries",
        "timed_out",
        "failed",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.completions = 0
        self.slo_met = 0
        self.ttfts: List[float] = []
        self.tpots: List[float] = []
        self.e2es: List[float] = []
        self.busy_s = 0.0
        self.spill_bytes = 0
        self.refill_bytes = 0
        self.dram_peak: Optional[int] = None
        self.dram_last: Optional[int] = None
        self.fault_events = 0
        self.shed = 0
        self.retries = 0
        self.timed_out = 0
        self.failed = 0


class TimelineCollector(Recorder):
    """Folds recorder emissions into ``window_s``-wide metric windows.

    Pass one to ``simulate(..., recorder=...)`` / ``simulate_fleet`` on
    its own, or alongside a ``SpanRecorder`` via
    :class:`~repro.obs.recorder.TeeRecorder` when the raw spans are
    wanted too.  The loops call :meth:`finalize_run` with the makespan
    once the last event lands; after that (or after an explicit
    :meth:`finalize`) the windows are frozen and :meth:`to_rows`,
    :meth:`to_csv` and :meth:`to_registry` answer from them.

    ``slo`` enables the goodput/``slo_met`` columns (judged per
    completion from its TTFT/TPOT/e2e, the same thresholds
    ``SLOSpec.met_by`` applies).  ``rules`` is a sequence of
    :class:`~repro.obs.alerts.AlertRule` evaluated at finalize.
    ``num_devices`` overrides the utilization denominator (it defaults
    to the number of distinct occupancy tracks seen, so a fleet device
    that never worked would otherwise not be counted).
    """

    enabled = True

    def __init__(
        self,
        window_s: float = 60.0,
        slo=None,
        rules: Sequence = (),
        num_devices: Optional[int] = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.slo = slo
        self.rules = tuple(rules)
        self.num_devices = num_devices
        #: The deterministic fire/resolve log, set by :meth:`finalize`
        #: when rules are attached (None before, and with no rules).
        self.alert_log: Optional[AlertLog] = None
        self._windows: Dict[int, _Window] = {}
        self._pending: Dict[object, float] = {}  # request_id -> arrival_s
        self._queue_events: List[Tuple[float, int]] = []
        self._device_tracks: Dict[str, None] = {}
        self._saw_memory = False
        self._saw_faults = False
        self._t_max = 0.0
        self._rows: Optional[List[dict]] = None

    # -- folding (the Recorder protocol) -------------------------------------
    def _window(self, ts_s: float) -> _Window:
        index = int(ts_s / self.window_s)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        return window

    def span(
        self,
        track: str,
        name: str,
        start_s: float,
        end_s: float,
        args: Optional[dict] = None,
    ) -> None:
        if self._rows is not None:
            raise ValueError("this TimelineCollector is finalized; use a fresh one")
        if end_s > self._t_max:
            self._t_max = end_s
        if track == _PHASE_TRACK:
            if name == QUEUE:
                # Arrivals are windowed by when the request *arrived*;
                # the span endpoints drive the exact queue-depth sweep.
                self._window(start_s).arrivals += 1
                if args is not None:
                    self._pending[args.get("request_id")] = start_s
                self._queue_events.append((start_s, 1))
                self._queue_events.append((end_s, -1))
            elif name == DECODE:
                window = self._window(end_s)
                window.completions += 1
                arrival = None
                gen_tokens = None
                if args is not None:
                    arrival = self._pending.pop(args.get("request_id"), None)
                    gen_tokens = args.get("gen_tokens")
                ttft = tpot = e2e = None
                if arrival is not None:
                    ttft = start_s - arrival
                    e2e = end_s - arrival
                    window.ttfts.append(ttft)
                    window.e2es.append(e2e)
                if gen_tokens:
                    tpot = (end_s - start_s) / gen_tokens
                    window.tpots.append(tpot)
                slo = self.slo
                if slo is not None and e2e is not None:
                    met = not (
                        (slo.ttft_s is not None and ttft > slo.ttft_s)
                        or (
                            slo.tpot_s is not None
                            and tpot is not None
                            and tpot > slo.tpot_s
                        )
                        or (slo.e2e_s is not None and e2e > slo.e2e_s)
                    )
                    if met:
                        window.slo_met += 1
            # PREFILL phase spans carry no window metric of their own
            # (critical-path attribution reads them from a SpanRecorder).
            return
        # Any other span is a device occupancy: distribute its duration
        # over the windows it overlaps and count the track as a device.
        self._device_tracks.setdefault(track, None)
        if end_s <= start_s:
            return
        width = self.window_s
        for index in range(int(start_s / width), int(end_s / width) + 1):
            low = index * width
            overlap = min(end_s, low + width) - max(start_s, low)
            if overlap > 0:
                self._window(low).busy_s += overlap

    def instant(
        self, track: str, name: str, ts_s: float, args: Optional[dict] = None
    ) -> None:
        if self._rows is not None:
            raise ValueError("this TimelineCollector is finalized; use a fresh one")
        if ts_s > self._t_max:
            self._t_max = ts_s
        if track == "faults":
            # The fault engine's lifecycle instants: every one counts
            # toward fault_events, outcome-bearing names also increment
            # their dedicated column.
            self._saw_faults = True
            window = self._window(ts_s)
            window.fault_events += 1
            if name == "shed":
                window.shed += 1
            elif name == "retry":
                window.retries += 1
            elif name == "timeout":
                window.timed_out += 1
            elif name == "failed":
                window.failed += 1
            return
        if args is None:
            return
        if name == "spill":
            self._saw_memory = True
            self._window(ts_s).spill_bytes += args.get("bytes", 0)
        elif name == "refill":
            self._saw_memory = True
            self._window(ts_s).refill_bytes += args.get("bytes", 0)
        elif name == "dram":
            self._saw_memory = True
            window = self._window(ts_s)
            used = args.get("used_bytes", 0)
            if window.dram_peak is None or used > window.dram_peak:
                window.dram_peak = used
            window.dram_last = used

    # -- finalization ---------------------------------------------------------
    def finalize_run(self, makespan_s: float) -> Optional[AlertLog]:
        """Event-loop hook: freeze the windows, evaluate the alert rules.

        Returns the :class:`AlertLog` (surfaced on the report) when rules
        are attached, else None.
        """
        self.finalize(makespan_s)
        return self.alert_log

    def finalize(self, makespan_s: Optional[float] = None) -> List[dict]:
        """Close the windows and build the row list (idempotent)."""
        if self._rows is not None:
            return self._rows
        width = self.window_s
        if makespan_s is None:
            makespan_s = self._t_max
        count = max(self._windows, default=0) + 1
        if makespan_s > 0:
            count = max(count, int(makespan_s / width) + 1)
        areas, maxes = self._sweep_queue_depth(count, makespan_s)
        devices = self.num_devices
        if devices is None:
            devices = len(self._device_tracks) or 1
        slo = self.slo
        rows: List[dict] = []
        dram_level: Optional[int] = None
        for index in range(count):
            window = self._windows.get(index)
            start = index * width
            arrivals = window.arrivals if window is not None else 0
            completions = window.completions if window is not None else 0
            busy = window.busy_s if window is not None else 0.0
            met = window.slo_met if window is not None else 0
            row = {
                "window": index,
                "start_s": start,
                "end_s": start + width,
                "arrivals": arrivals,
                "completions": completions,
                "arrival_qps": arrivals / width,
                "completion_qps": completions / width,
                "goodput_qps": met / width if slo is not None else None,
                "slo_met": met if slo is not None else None,
                "queue_depth_mean": areas[index] / width,
                "queue_depth_max": maxes[index],
                "busy_s": busy,
                "utilization": busy / (width * devices),
            }
            for metric, values in (
                ("ttft", window.ttfts if window is not None else ()),
                ("tpot", window.tpots if window is not None else ()),
                ("e2e", window.e2es if window is not None else ()),
            ):
                ordered = sorted(values)
                for q in (50, 95, 99):
                    row[f"{metric}_p{q}_s"] = _percentile_of_sorted(ordered, q)
            if self._saw_memory:
                peak = dram_level
                if window is not None and window.dram_peak is not None:
                    peak = (
                        window.dram_peak
                        if peak is None
                        else max(peak, window.dram_peak)
                    )
                    dram_level = window.dram_last
                row["kv_spill_bytes"] = (
                    window.spill_bytes if window is not None else 0
                )
                row["kv_refill_bytes"] = (
                    window.refill_bytes if window is not None else 0
                )
                row["kv_dram_peak_bytes"] = peak
            else:
                row["kv_spill_bytes"] = None
                row["kv_refill_bytes"] = None
                row["kv_dram_peak_bytes"] = None
            if self._saw_faults:
                row["fault_events"] = (
                    window.fault_events if window is not None else 0
                )
                row["shed"] = window.shed if window is not None else 0
                row["retries"] = window.retries if window is not None else 0
                row["timed_out"] = (
                    window.timed_out if window is not None else 0
                )
                row["failed"] = window.failed if window is not None else 0
            else:
                row["fault_events"] = None
                row["shed"] = None
                row["retries"] = None
                row["timed_out"] = None
                row["failed"] = None
            rows.append(row)
        self._rows = rows
        if self.rules:
            self.alert_log = evaluate_alerts(rows, width, self.rules)
        return rows

    def _sweep_queue_depth(
        self, count: int, makespan_s: float
    ) -> Tuple[List[float], List[int]]:
        """Exact per-window time-weighted area and max of the queue depth.

        One chronological sweep over the QUEUE-span endpoints; at equal
        timestamps the ``-1`` deltas sort first, so a request leaving the
        queue exactly as another joins never inflates the max.
        """
        width = self.window_s
        areas = [0.0] * count
        maxes = [0] * count
        last = count - 1
        depth = 0
        prev = 0.0

        def spread(until: float) -> None:
            nonlocal prev
            if until > prev and depth > 0:
                for index in range(int(prev / width), min(int(until / width), last) + 1):
                    low = index * width
                    overlap = min(until, low + width) - max(prev, low)
                    if overlap > 0:
                        areas[index] += depth * overlap
                        if depth > maxes[index]:
                            maxes[index] = depth
            prev = until if until > prev else prev

        for ts, delta in sorted(self._queue_events):
            spread(ts)
            depth += delta
            index = min(int(ts / width), last)
            if depth > maxes[index]:
                maxes[index] = depth
        if makespan_s > prev:
            spread(makespan_s)
        return areas, maxes

    # -- exports --------------------------------------------------------------
    def to_rows(self) -> List[dict]:
        """One dict per window, keyed by :data:`TIMELINE_CSV_FIELDS`."""
        return self.finalize()

    def to_csv(self, path: Optional[str] = None) -> str:
        """The windows as a columnar CSV; byte-stable under a fixed seed."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(TIMELINE_CSV_FIELDS)
        for row in self.to_rows():
            writer.writerow(
                [
                    "" if row[field] is None else row[field]
                    for field in TIMELINE_CSV_FIELDS
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def to_registry(self) -> MetricsRegistry:
        """The windows as ``repro_timeline_*`` gauges labeled by window.

        Every defined cell becomes one ``repro_timeline_<column>`` gauge
        sample with a ``window="<index>"`` label, so the PR-8 Prometheus
        exposition/round-trip path works on timelines unchanged.
        """
        registry = MetricsRegistry()
        for row in self.to_rows():
            label = str(row["window"])
            for field in TIMELINE_CSV_FIELDS[1:]:
                value = row[field]
                if value is None:
                    continue
                registry.gauge(
                    f"repro_timeline_{field}", f"Per-window {field}"
                ).set(value, window=label)
        return registry

    def snapshot(self) -> MetricsSnapshot:
        """:meth:`to_registry` frozen into a :class:`MetricsSnapshot`."""
        return self.to_registry().snapshot()
