"""Critical-path attribution over a recorded span stream.

:func:`critical_path` walks a :class:`~repro.obs.recorder.SpanRecorder`'s
events and answers *where the time actually went*:

* per request — the QUEUE/PREFILL/DECODE phase durations and each
  phase's share of that request's end-to-end time,
* in aggregate and at the tail — total seconds per phase, plus the
  breakdown of the p50/p95/p99 request by e2e ("the p99 request spent
  61% of its life queueing"),
* device-level memory I/O — spill and refill seconds/bytes from the
  memory model's instants (this time is *inside* the PREFILL/DECODE
  spans that paid it, so it reads as "of which: flash I/O"),
* per device — the makespan-critical chain of occupancies: walking back
  from each device track's last occupancy while spans stay back-to-back
  (exact float equality, which the event loops guarantee because a
  chained occupancy starts on the previous one's popped end time).  The
  device whose chain ends last is the makespan-critical one.

Everything is a pure function of the recorded events, so the report and
its tables are as deterministic as the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.recorder import DECODE, PREFILL, QUEUE, SpanRecorder

#: The track both event loops emit request phase spans on.
_PHASE_TRACK = "requests"


class RequestAttribution:
    """One request's time budget, split across its phases."""

    __slots__ = (
        "request_id",
        "device",
        "queue_s",
        "prefill_s",
        "decode_s",
        "arrival_s",
        "finish_s",
    )

    def __init__(self, request_id, device=None) -> None:
        self.request_id = request_id
        self.device = device
        self.queue_s = 0.0
        self.prefill_s = 0.0
        self.decode_s = 0.0
        self.arrival_s: Optional[float] = None
        self.finish_s: Optional[float] = None

    @property
    def e2e_s(self) -> float:
        return self.queue_s + self.prefill_s + self.decode_s

    def _share(self, seconds: float) -> float:
        total = self.e2e_s
        return seconds / total if total > 0 else 0.0

    @property
    def queue_share(self) -> float:
        """Fraction of this request's e2e spent waiting to start."""
        return self._share(self.queue_s)

    @property
    def prefill_share(self) -> float:
        return self._share(self.prefill_s)

    @property
    def decode_share(self) -> float:
        return self._share(self.decode_s)

    def __repr__(self) -> str:
        return (
            f"RequestAttribution(request_id={self.request_id!r}, "
            f"queue_s={self.queue_s:.3f}, prefill_s={self.prefill_s:.3f}, "
            f"decode_s={self.decode_s:.3f})"
        )


class OccupancyChain:
    """The back-to-back run of occupancies ending a device's timeline."""

    __slots__ = ("track", "spans", "start_s", "end_s")

    def __init__(self, track: str, spans: int, start_s: float, end_s: float) -> None:
        self.track = track
        self.spans = spans
        self.start_s = start_s
        self.end_s = end_s

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s

    def __repr__(self) -> str:
        return (
            f"OccupancyChain({self.track!r}, spans={self.spans}, "
            f"[{self.start_s:.3f}, {self.end_s:.3f}])"
        )


class CriticalPathReport:
    """What :func:`critical_path` derived from one recorded run."""

    __slots__ = (
        "requests",
        "spill_s",
        "refill_s",
        "spill_bytes",
        "refill_bytes",
        "chains",
    )

    def __init__(
        self,
        requests: List[RequestAttribution],
        spill_s: float,
        refill_s: float,
        spill_bytes: int,
        refill_bytes: int,
        chains: List[OccupancyChain],
    ) -> None:
        self.requests = requests
        self.spill_s = spill_s
        self.refill_s = refill_s
        self.spill_bytes = spill_bytes
        self.refill_bytes = refill_bytes
        self.chains = chains

    # -- aggregates -----------------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Total seconds per phase across all recorded requests."""
        queue = prefill = decode = 0.0
        for request in self.requests:
            queue += request.queue_s
            prefill += request.prefill_s
            decode += request.decode_s
        return {
            "queue": queue,
            "prefill": prefill,
            "decode": decode,
            "e2e": queue + prefill + decode,
        }

    def tail(self, q: float) -> Optional[RequestAttribution]:
        """The nearest-rank q-th percentile request by e2e (None if empty).

        Percentile arithmetic over latencies interpolates between values;
        a *breakdown* belongs to one concrete request, so this picks the
        request at the nearest rank (ties broken by request id).
        """
        if not self.requests:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be between 0 and 100")
        ordered = sorted(self.requests, key=lambda r: (r.e2e_s, str(r.request_id)))
        rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil(q*n/100), >= 1
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def makespan_chain(self) -> Optional[OccupancyChain]:
        """The chain ending last — the occupancies the makespan sits on."""
        best = None
        for chain in self.chains:
            if best is None or chain.end_s > best.end_s:
                best = chain
        return best

    # -- tables ---------------------------------------------------------------
    def attribution_rows(self) -> Tuple[List[str], List[List[object]]]:
        """(headers, rows) for :func:`repro.reporting.print_table`.

        Aggregate phase totals with their share of summed e2e, the
        device-level flash I/O inside those phases, then the
        p50/p95/p99 request's queue/prefill/decode split.
        """
        totals = self.totals()
        e2e = totals["e2e"]

        def share(seconds: float) -> str:
            return f"{100.0 * seconds / e2e:.1f}" if e2e > 0 else "-"

        rows: List[List[object]] = [
            ["queue (aggregate)", f"{totals['queue']:.3f}", share(totals["queue"])],
            [
                "prefill (aggregate)",
                f"{totals['prefill']:.3f}",
                share(totals["prefill"]),
            ],
            ["decode (aggregate)", f"{totals['decode']:.3f}", share(totals["decode"])],
        ]
        if self.spill_s or self.refill_s:
            rows.append(
                ["of which: spill write", f"{self.spill_s:.3f}", share(self.spill_s)]
            )
            rows.append(
                [
                    "of which: refill/read-through",
                    f"{self.refill_s:.3f}",
                    share(self.refill_s),
                ]
            )
        for q in (50, 95, 99):
            request = self.tail(q)
            if request is None:
                continue
            rows.append(
                [
                    f"p{q} request (q/p/d % of e2e)",
                    f"{request.e2e_s:.3f}",
                    f"{100 * request.queue_share:.0f}/"
                    f"{100 * request.prefill_share:.0f}/"
                    f"{100 * request.decode_share:.0f}",
                ]
            )
        return ["component", "seconds", "share (%)"], rows

    def chain_rows(self) -> Tuple[List[str], List[List[object]]]:
        """(headers, rows): each device's ending occupancy chain."""
        critical = self.makespan_chain
        rows = [
            [
                chain.track + (" *" if chain is critical else ""),
                chain.spans,
                f"{chain.start_s:.3f}",
                f"{chain.end_s:.3f}",
                f"{chain.seconds:.3f}",
            ]
            for chain in self.chains
        ]
        return ["device (* = makespan)", "chained spans", "from (s)", "to (s)", "busy (s)"], rows


def critical_path(recorder: SpanRecorder) -> CriticalPathReport:
    """Attribute a recorded run's time: phases, flash I/O, device chains.

    ``recorder`` is a :class:`SpanRecorder` that observed one simulation
    (serve or fleet).  Requests appear in emission order — completion
    order, which is deterministic — and occupancy chains are derived per
    device track.
    """
    requests: Dict[object, RequestAttribution] = {}
    order: List[RequestAttribution] = []
    occupancies: Dict[str, List[Tuple[float, float]]] = {}
    spill_s = refill_s = 0.0
    spill_bytes = refill_bytes = 0
    for kind, track, name, start_s, dur_s, args in recorder.events:
        if kind == "X":
            if track == _PHASE_TRACK:
                request_id = args.get("request_id") if args else None
                attribution = requests.get(request_id)
                if attribution is None:
                    attribution = requests[request_id] = RequestAttribution(
                        request_id, args.get("device") if args else None
                    )
                    order.append(attribution)
                if name == QUEUE:
                    attribution.queue_s += dur_s
                    attribution.arrival_s = start_s
                elif name == PREFILL:
                    attribution.prefill_s += dur_s
                elif name == DECODE:
                    attribution.decode_s += dur_s
                    attribution.finish_s = start_s + dur_s
            else:
                occupancies.setdefault(track, []).append(
                    (start_s, start_s + dur_s)
                )
        elif kind == "i" and args is not None:
            if name == "spill":
                spill_s += args.get("seconds", 0.0)
                spill_bytes += args.get("bytes", 0)
            elif name == "refill":
                refill_s += args.get("seconds", 0.0)
                refill_bytes += args.get("bytes", 0)
    chains: List[OccupancyChain] = []
    for track, spans in occupancies.items():
        # Spans on one track are emitted in chronological order; walk
        # back from the last one while each span starts exactly where
        # the previous ended (the loops reuse the popped completion time
        # as the next start, so contiguity is exact float equality).
        index = len(spans) - 1
        end = spans[index][1]
        start = spans[index][0]
        count = 1
        while index > 0 and spans[index - 1][1] == start:
            index -= 1
            start = spans[index][0]
            count += 1
        chains.append(OccupancyChain(track, count, start, end))
    return CriticalPathReport(
        order, spill_s, refill_s, spill_bytes, refill_bytes, chains
    )
