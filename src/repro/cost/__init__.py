"""Cost, storage-density and area/power models (Tables I, IV and V)."""

from repro.cost.density import STORAGE_DENSITY_TABLE, StorageDensityEntry
from repro.cost.area import ComputeCoreAreaModel, AreaPowerEntry
from repro.cost.bom import BillOfMaterials, SystemCost, chiplet_packaging_bound

__all__ = [
    "StorageDensityEntry",
    "STORAGE_DENSITY_TABLE",
    "AreaPowerEntry",
    "ComputeCoreAreaModel",
    "BillOfMaterials",
    "SystemCost",
    "chiplet_packaging_bound",
]
