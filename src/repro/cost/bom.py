"""Bill-of-materials cost model (Table V).

To hold a 70B model at INT8 plus its KV cache, a conventional design needs
~80 GB of DRAM; Cambricon-LLM needs only 2 GB of DRAM (KV cache) plus 80 GB
of much cheaper NAND flash.  The per-GB prices below are the ones implied by
the paper's Table V totals.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Per-GB prices implied by Table V ($194.68 for 80 GB DRAM, $38.80 for 80 GB flash).
DRAM_DOLLARS_PER_GB = 194.68 / 80
FLASH_DOLLARS_PER_GB = 38.80 / 80


@dataclass(frozen=True)
class SystemCost:
    """Memory bill of materials of one architecture."""

    name: str
    dram_gb: float
    flash_gb: float
    dram_dollars_per_gb: float = DRAM_DOLLARS_PER_GB
    flash_dollars_per_gb: float = FLASH_DOLLARS_PER_GB

    def __post_init__(self) -> None:
        if self.dram_gb < 0 or self.flash_gb < 0:
            raise ValueError("capacities must be non-negative")

    @property
    def dram_cost(self) -> float:
        return self.dram_gb * self.dram_dollars_per_gb

    @property
    def flash_cost(self) -> float:
        return self.flash_gb * self.flash_dollars_per_gb

    @property
    def total_cost(self) -> float:
        return self.dram_cost + self.flash_cost


@dataclass(frozen=True)
class BillOfMaterials:
    """Table-V comparison for a given model footprint.

    Parameters
    ----------
    weight_gb:
        Model weight footprint in GB (80 GB covers Llama2-70B at INT8 with
        headroom).
    kv_cache_gb:
        DRAM needed for the KV cache and activations (2 GB in the paper).
    """

    weight_gb: float = 80.0
    kv_cache_gb: float = 2.0

    def cambricon_llm(self) -> SystemCost:
        """Weights in flash, only the KV cache in DRAM."""
        return SystemCost(
            name="Cambricon-LLM", dram_gb=self.kv_cache_gb, flash_gb=self.weight_gb
        )

    def traditional(self) -> SystemCost:
        """Everything in DRAM (the conventional mobile-SoC approach)."""
        return SystemCost(
            name="Traditional", dram_gb=self.weight_gb, flash_gb=0.0
        )

    def savings(self) -> float:
        """Dollar savings of Cambricon-LLM over the traditional design."""
        return self.traditional().total_cost - self.cambricon_llm().total_cost


def chiplet_packaging_bound(raw_chip_cost: float, fraction: float = 0.15) -> float:
    """Upper bound on the D2D-interface + packaging cost added by chiplets.

    The paper cites chiplet cost models putting this below 15 % of the raw
    chip cost (≤ $100 for Cambricon-LLM).
    """
    if raw_chip_cost < 0:
        raise ValueError("raw_chip_cost must be non-negative")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    return raw_chip_cost * fraction
