"""Area and power of the on-die Compute Core (Table IV).

The paper synthesised the Compute Core in TSMC 65 nm; the table below seeds a
small parametric model so the overhead ratios (1.2 % area, 4.5 % power of the
die) can be recomputed for other buffer sizes or MAC counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class AreaPowerEntry:
    """Area (um^2) and power (uW) of one Compute Core component."""

    name: str
    area_um2: float
    power_uw: float


#: The paper's synthesis results (Table IV).
PAPER_TABLE_IV: Tuple[AreaPowerEntry, ...] = (
    AreaPowerEntry("Error Correction Unit", 496.4, 0.4),
    AreaPowerEntry("PEs", 562.0, 343.6),
    AreaPowerEntry("Input Buffer and Output Buffer", 58755.1, 1591.7),
)

#: Die-level reference values implied by the paper's 1.2 % / 4.5 % overheads.
_PAPER_TOTAL_AREA_UM2 = 39813.5
_PAPER_TOTAL_POWER_UW = 1935.6
_PAPER_AREA_OVERHEAD = 0.012
_PAPER_POWER_OVERHEAD = 0.045


@dataclass(frozen=True)
class ComputeCoreAreaModel:
    """Parametric area/power model of the Compute Core.

    Scaling is linear in MAC count for the PE array and linear in buffer
    bytes for the SRAM — adequate for the small design-space exploration the
    tests and the ablation benches perform.
    """

    macs: int = 2
    buffer_bytes: int = 2048
    ecu_entries: int = 163
    reference_macs: int = 2
    reference_buffer_bytes: int = 2048
    reference_ecu_entries: int = 163

    def components(self) -> Dict[str, AreaPowerEntry]:
        """Component-level estimates scaled from the paper's synthesis."""
        ecu, pes, buffers = PAPER_TABLE_IV
        mac_scale = self.macs / self.reference_macs
        buffer_scale = self.buffer_bytes / self.reference_buffer_bytes
        ecu_scale = self.ecu_entries / self.reference_ecu_entries
        return {
            "ecu": AreaPowerEntry("Error Correction Unit", ecu.area_um2 * ecu_scale, ecu.power_uw * ecu_scale),
            "pes": AreaPowerEntry("PEs", pes.area_um2 * mac_scale, pes.power_uw * mac_scale),
            "buffers": AreaPowerEntry(
                "Input Buffer and Output Buffer",
                buffers.area_um2 * buffer_scale,
                buffers.power_uw * buffer_scale,
            ),
        }

    def total_area_um2(self) -> float:
        return sum(entry.area_um2 for entry in self.components().values())

    def total_power_uw(self) -> float:
        return sum(entry.power_uw for entry in self.components().values())

    def die_area_overhead(self) -> float:
        """Compute Core area as a fraction of the flash die area."""
        die_area = _PAPER_TOTAL_AREA_UM2 / _PAPER_AREA_OVERHEAD
        return self.total_area_um2() / die_area

    def die_power_overhead(self) -> float:
        """Compute Core power as a fraction of the flash die power."""
        die_power = _PAPER_TOTAL_POWER_UW / _PAPER_POWER_OVERHEAD
        return self.total_power_uw() / die_power

    @staticmethod
    def paper_reference() -> Dict[str, float]:
        """The headline numbers of Table IV for direct comparison."""
        return {
            "total_area_um2": _PAPER_TOTAL_AREA_UM2,
            "total_power_uw": _PAPER_TOTAL_POWER_UW,
            "area_overhead": _PAPER_AREA_OVERHEAD,
            "power_overhead": _PAPER_POWER_OVERHEAD,
        }
