"""Storage density of DRAM versus NAND flash (Table I).

The two-orders-of-magnitude density gap is the paper's core argument for
keeping LLM weights in flash: a 200 GB NAND die stack occupies roughly the
footprint of a smartphone SoC, which a DRAM-only design could never match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class StorageDensityEntry:
    """One row of Table I."""

    manufacturer: str
    memory_type: str
    layers: int
    density_gbit_per_mm2: float

    def area_mm2_for_bytes(self, num_bytes: float) -> float:
        """Silicon area needed to store ``num_bytes`` at this density."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        gbits = num_bytes * 8 / 1e9
        return gbits / self.density_gbit_per_mm2


#: Table I of the paper.
STORAGE_DENSITY_TABLE: Tuple[StorageDensityEntry, ...] = (
    StorageDensityEntry("SK hynix", "Flash", 300, 20.00),
    StorageDensityEntry("Samsung", "Flash", 280, 28.50),
    StorageDensityEntry("SK hynix", "DDR", 1, 0.30),
    StorageDensityEntry("SK hynix", "LPDDR", 1, 0.31),
)


def density_advantage() -> float:
    """Best flash density over best DRAM density (≈ 2 orders of magnitude)."""
    flash = max(e.density_gbit_per_mm2 for e in STORAGE_DENSITY_TABLE if e.memory_type == "Flash")
    dram = max(e.density_gbit_per_mm2 for e in STORAGE_DENSITY_TABLE if e.memory_type != "Flash")
    return flash / dram
