"""Operator-level description of a single decode step.

The performance model in :mod:`repro.core` needs, for every operator in a
decoder layer, three things:

* how many arithmetic operations it performs,
* how many bytes of **weights** it reads (the traffic that lives in flash),
* how many bytes of **activations / KV cache** it touches (the traffic that
  lives in DRAM or on-chip buffers).

Each operator class below reports exactly that.  Operators also carry a
``placement`` tag matching Fig. 5 of the paper: weight GeMVs are executed
collaboratively by flash + NPU, KV-cache matrix ops by the NPU alone, and
KV-cache loads by NPU + DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Placement(enum.Enum):
    """Hardware mapping of an operator (paper Fig. 5)."""

    FLASH_AND_NPU = "flash+npu"   # weight GeMVs — split by the tiling strategy
    NPU_ONLY = "npu"              # KV-cache matrix ops, SFU, elementwise
    NPU_AND_DRAM = "npu+dram"     # KV-cache loads from DRAM


@dataclass(frozen=True)
class Operator:
    """Base class for all decode-step operators.

    Subclasses override the traffic/compute properties; the base class keeps
    the bookkeeping fields every operator shares.
    """

    name: str
    placement: Placement = field(default=Placement.NPU_ONLY)

    @property
    def ops(self) -> float:
        """Arithmetic operations (multiply and add counted separately)."""
        raise NotImplementedError

    @property
    def weight_bytes(self) -> float:
        """Bytes of model weights this operator must read."""
        return 0.0

    @property
    def activation_bytes(self) -> float:
        """Bytes of activations read + written (excludes weights and KV)."""
        return 0.0

    @property
    def kv_bytes(self) -> float:
        """Bytes of KV cache read or written from DRAM."""
        return 0.0

    @property
    def total_bytes(self) -> float:
        """All bytes moved by this operator."""
        return self.weight_bytes + self.activation_bytes + self.kv_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte moved."""
        total = self.total_bytes
        if total == 0:
            return float("inf")
        return self.ops / total


@dataclass(frozen=True)
class GeMVOp(Operator):
    """General matrix–vector product ``y = W x`` against a *weight* matrix.

    ``rows`` is the output dimension (height of W), ``cols`` the input
    dimension.  ``batch_tokens`` > 1 models the prefill phase where the same
    weights are reused across tokens (GeMM); the decode phase uses 1.
    """

    rows: int = 0
    cols: int = 0
    weight_bits: int = 8
    activation_bits: int = 16
    batch_tokens: int = 1
    placement: Placement = field(default=Placement.FLASH_AND_NPU)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"GeMV {self.name!r} needs positive dims, got {self.rows}x{self.cols}"
            )
        if self.batch_tokens <= 0:
            raise ValueError("batch_tokens must be positive")

    @property
    def ops(self) -> float:
        return 2.0 * self.rows * self.cols * self.batch_tokens

    @property
    def weight_bytes(self) -> float:
        return self.rows * self.cols * self.weight_bits / 8

    @property
    def activation_bytes(self) -> float:
        per_token = (self.cols + self.rows) * self.activation_bits / 8
        return per_token * self.batch_tokens

    @property
    def weight_elements(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class AttentionScoreOp(Operator):
    """Q·K^T score computation against the cached keys (``P = q K^T``).

    Reads the K cache of ``seq_len`` tokens from DRAM; no model weights.
    """

    num_heads: int = 0
    head_dim: int = 0
    seq_len: int = 0
    kv_bits: int = 16
    activation_bits: int = 16
    placement: Placement = field(default=Placement.NPU_AND_DRAM)

    @property
    def ops(self) -> float:
        return 2.0 * self.num_heads * self.head_dim * self.seq_len

    @property
    def kv_bytes(self) -> float:
        return self.num_heads * self.head_dim * self.seq_len * self.kv_bits / 8

    @property
    def activation_bytes(self) -> float:
        q = self.num_heads * self.head_dim
        scores = self.num_heads * self.seq_len
        return (q + scores) * self.activation_bits / 8


@dataclass(frozen=True)
class AttentionValueOp(Operator):
    """Weighted sum of cached values (``A = S V``).

    Reads the V cache of ``seq_len`` tokens from DRAM; no model weights.
    """

    num_heads: int = 0
    head_dim: int = 0
    seq_len: int = 0
    kv_bits: int = 16
    activation_bits: int = 16
    placement: Placement = field(default=Placement.NPU_AND_DRAM)

    @property
    def ops(self) -> float:
        return 2.0 * self.num_heads * self.head_dim * self.seq_len

    @property
    def kv_bytes(self) -> float:
        return self.num_heads * self.head_dim * self.seq_len * self.kv_bits / 8

    @property
    def activation_bytes(self) -> float:
        scores = self.num_heads * self.seq_len
        out = self.num_heads * self.head_dim
        return (scores + out) * self.activation_bits / 8


@dataclass(frozen=True)
class SFUOp(Operator):
    """Special-function work handled by the NPU's SFU (Softmax, RoPE, SiLU...).

    ``elements`` is the vector length processed; ``ops_per_element`` is a
    rough cost factor (exp + sum + div for softmax, sin/cos + rotate for
    RoPE).  These ops are tiny compared with GeMVs but are serial points in
    the layer dataflow, so the engine accounts for them explicitly.
    """

    elements: int = 0
    ops_per_element: float = 4.0
    activation_bits: int = 16
    placement: Placement = field(default=Placement.NPU_ONLY)

    @property
    def ops(self) -> float:
        return self.elements * self.ops_per_element

    @property
    def activation_bytes(self) -> float:
        return 2 * self.elements * self.activation_bits / 8


@dataclass(frozen=True)
class ElementwiseOp(Operator):
    """Element-wise vector op on the NPU (residual add, layernorm, gating)."""

    elements: int = 0
    ops_per_element: float = 2.0
    activation_bits: int = 16
    placement: Placement = field(default=Placement.NPU_ONLY)

    @property
    def ops(self) -> float:
        return self.elements * self.ops_per_element

    @property
    def activation_bytes(self) -> float:
        return 3 * self.elements * self.activation_bits / 8
