"""KV-cache model.

The paper keeps the KV cache in LPDDR DRAM (it is small — ~700 MB for a 70B
model at 1000 cached tokens) while the weights live in flash.  This module
provides the size accounting and the per-token read/write traffic the NPU
generates against DRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.llm.models import ModelSpec


@dataclass
class KVCache:
    """State of the KV cache during decoding.

    Parameters
    ----------
    model:
        Architecture the cache belongs to.
    seq_len:
        Number of tokens currently cached (prompt + generated so far).
    bits_per_value:
        Storage precision of cached keys/values (16 for FP16, 8 for INT8 KV).
    """

    model: ModelSpec
    seq_len: int
    bits_per_value: int = 16

    def __post_init__(self) -> None:
        if self.seq_len < 0:
            raise ValueError(f"seq_len must be non-negative, got {self.seq_len}")
        if self.bits_per_value <= 0:
            raise ValueError("bits_per_value must be positive")

    @property
    def bytes_per_token_per_layer(self) -> float:
        """K + V bytes stored per token in one layer."""
        return 2 * self.model.kv_dim * self.bits_per_value / 8

    @property
    def total_bytes(self) -> float:
        """Current total cache footprint in DRAM."""
        return self.seq_len * self.model.num_layers * self.bytes_per_token_per_layer

    def read_bytes_per_decode_step(self) -> float:
        """Bytes of cached K and V the NPU must read to decode one token.

        The attention of every layer reads the full cache of that layer.
        """
        return self.total_bytes

    def write_bytes_per_decode_step(self) -> float:
        """Bytes written to append the new token's K and V in every layer."""
        return self.model.num_layers * self.bytes_per_token_per_layer

    # -- integer-byte variants ----------------------------------------------
    # Allocator-style accounting (repro.memory.DramPool) must add and
    # subtract footprints thousands of times without float drift, so these
    # round *once*, per token-layer, and build every larger quantity from
    # that integer.  ceil, not round: a byte budget can only be conservative.

    @property
    def bytes_per_token_per_layer_int(self) -> int:
        """``bytes_per_token_per_layer`` rounded up to whole bytes."""
        return math.ceil(2 * self.model.kv_dim * self.bits_per_value / 8)

    @property
    def total_bytes_int(self) -> int:
        """Integer total footprint: exact multiples of the per-token bytes."""
        return (
            self.seq_len * self.model.num_layers * self.bytes_per_token_per_layer_int
        )

    def write_bytes_per_decode_step_int(self) -> int:
        """Integer bytes appended per decode step (one token, every layer)."""
        return self.model.num_layers * self.bytes_per_token_per_layer_int

    def append(self, tokens: int = 1) -> "KVCache":
        """Return a new cache state with ``tokens`` more cached tokens."""
        if tokens < 0:
            raise ValueError("cannot append a negative number of tokens")
        return KVCache(self.model, self.seq_len + tokens, self.bits_per_value)

    def fits_in(self, dram_bytes: float) -> bool:
        """Whether the cache fits in a DRAM budget (used by examples)."""
        return self.total_bytes <= dram_bytes
