"""Transformer model zoo used throughout the paper's evaluation.

The paper evaluates OPT-6.7B/13B/30B/66B against FlexGen and
Llama2-7B/13B/70B against MLC-LLM.  We describe each architecture with the
hyper-parameters published in the OPT and Llama2 papers; all op and byte
counts downstream derive from these numbers, so getting them right matters
more than it may look.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of a decoder-only transformer.

    Attributes
    ----------
    name:
        Canonical model name, e.g. ``"opt-6.7b"``.
    family:
        ``"opt"`` or ``"llama2"``; controls the FFN structure (OPT uses a
        two-matrix ReLU FFN, Llama2 a three-matrix SwiGLU FFN) and attention
        variant (Llama2-70B uses grouped-query attention).
    num_layers:
        Number of decoder layers.
    hidden_size:
        Model (embedding) dimension ``d_model``.
    num_heads:
        Number of attention heads.
    num_kv_heads:
        Number of key/value heads (== ``num_heads`` unless GQA).
    ffn_hidden_size:
        Intermediate dimension of the feed-forward network.
    vocab_size:
        Vocabulary size (drives the LM head GeMV).
    max_seq_len:
        Maximum sequence length the model was trained for.
    """

    name: str
    family: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden_size: int
    vocab_size: int
    max_seq_len: int = 2048

    def __post_init__(self) -> None:
        if self.family not in ("opt", "llama2"):
            raise ValueError(f"unknown model family: {self.family!r}")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_heads {self.num_heads} not divisible by "
                f"num_kv_heads {self.num_kv_heads}"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output (``num_kv_heads * head_dim``)."""
        return self.num_kv_heads * self.head_dim

    @property
    def uses_gated_ffn(self) -> bool:
        """Whether the FFN has a third (gate) matrix, as in Llama2's SwiGLU."""
        return self.family == "llama2"

    def attention_weight_shapes(self) -> Tuple[Tuple[int, int], ...]:
        """Weight matrices of one attention block as (rows, cols) = (out, in)."""
        h = self.hidden_size
        return (
            (h, h),               # W_Q
            (self.kv_dim, h),     # W_K
            (self.kv_dim, h),     # W_V
            (h, h),               # W_O
        )

    def ffn_weight_shapes(self) -> Tuple[Tuple[int, int], ...]:
        """Weight matrices of one FFN block as (rows, cols) = (out, in)."""
        h, f = self.hidden_size, self.ffn_hidden_size
        if self.uses_gated_ffn:
            return ((f, h), (f, h), (h, f))   # gate, up, down
        return ((f, h), (h, f))               # up, down

    def layer_weight_shapes(self) -> Tuple[Tuple[int, int], ...]:
        """All weight matrices of one decoder layer."""
        return self.attention_weight_shapes() + self.ffn_weight_shapes()

    def layer_weight_elements(self) -> int:
        """Number of weight elements in one decoder layer."""
        return sum(r * c for r, c in self.layer_weight_shapes())

    def decoder_weight_elements(self) -> int:
        """Number of weight elements across all decoder layers."""
        return self.num_layers * self.layer_weight_elements()

    def lm_head_elements(self) -> int:
        """Number of weight elements in the output (LM head) projection."""
        return self.vocab_size * self.hidden_size

    def embedding_elements(self) -> int:
        """Number of weight elements in the input token embedding table."""
        return self.vocab_size * self.hidden_size

    def total_parameters(self) -> int:
        """Approximate total parameter count (decoder + embedding + head).

        Norm scales and biases are a negligible fraction and are ignored,
        matching the accounting the paper uses ("70 GB for 70B at INT8").
        """
        return (
            self.decoder_weight_elements()
            + self.embedding_elements()
            + self.lm_head_elements()
        )

    def weight_bytes(self, bits_per_weight: int = 8) -> float:
        """Total weight footprint in bytes under the given quantization."""
        return self.total_parameters() * bits_per_weight / 8

    def kv_cache_bytes(self, seq_len: int, bits_per_value: int = 16) -> float:
        """KV-cache footprint for ``seq_len`` cached tokens.

        Two tensors (K and V) of ``kv_dim`` per token per layer.
        """
        if seq_len < 0:
            raise ValueError(f"seq_len must be non-negative, got {seq_len}")
        elements = 2 * self.num_layers * seq_len * self.kv_dim
        return elements * bits_per_value / 8


def _opt(name: str, layers: int, hidden: int, heads: int, vocab: int = 50272) -> ModelSpec:
    return ModelSpec(
        name=name,
        family="opt",
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=heads,
        ffn_hidden_size=4 * hidden,
        vocab_size=vocab,
    )


def _llama2(
    name: str,
    layers: int,
    hidden: int,
    heads: int,
    kv_heads: int,
    ffn: int,
    vocab: int = 32000,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        family="llama2",
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=kv_heads,
        ffn_hidden_size=ffn,
        vocab_size=vocab,
        max_seq_len=4096,
    )


#: All models evaluated in the paper, keyed by canonical name.
MODEL_ZOO: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        _opt("opt-6.7b", layers=32, hidden=4096, heads=32),
        _opt("opt-13b", layers=40, hidden=5120, heads=40),
        _opt("opt-30b", layers=48, hidden=7168, heads=56),
        _opt("opt-66b", layers=64, hidden=9216, heads=72),
        _llama2("llama2-7b", layers=32, hidden=4096, heads=32, kv_heads=32, ffn=11008),
        _llama2("llama2-13b", layers=40, hidden=5120, heads=40, kv_heads=40, ffn=13824),
        _llama2("llama2-70b", layers=80, hidden=8192, heads=64, kv_heads=8, ffn=28672),
    )
}

#: Models used in the FlexGen comparison (Fig. 9a, 11, 12, 13, 14, 16).
OPT_MODELS = ("opt-6.7b", "opt-13b", "opt-30b", "opt-66b")

#: Models used in the MLC-LLM comparison (Fig. 9b, 11, 12, 13, 14, 16).
LLAMA2_MODELS = ("llama2-7b", "llama2-13b", "llama2-70b")

#: The seven-model order used on the x axis of most ablation figures.
PAPER_MODEL_ORDER = OPT_MODELS + LLAMA2_MODELS


def get_model(name: str) -> ModelSpec:
    """Look up a model by name (case-insensitive).

    Raises
    ------
    KeyError
        If the model is not in the zoo; the message lists valid names.
    """
    key = name.lower()
    if key not in MODEL_ZOO:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_ZOO))}"
        )
    return MODEL_ZOO[key]


def list_models() -> Tuple[str, ...]:
    """Return the names of all models in the zoo, in paper order."""
    return PAPER_MODEL_ORDER
