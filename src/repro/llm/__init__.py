"""LLM workload substrate.

This package models the *workload* side of the paper: the transformer
decoder architectures (OPT and Llama2 families), the operators a single
decode step executes, the KV cache, and the resulting op/byte counts that
drive the performance model.

Public API
----------
- :class:`repro.llm.models.ModelSpec` and :func:`repro.llm.models.get_model`
- :class:`repro.llm.workload.DecodeWorkload` /
  :class:`repro.llm.workload.PrefillWorkload`
- :mod:`repro.llm.intensity` for arithmetic-intensity analysis (Fig. 1/3a)
"""

from repro.llm.models import MODEL_ZOO, ModelSpec, get_model, list_models
from repro.llm.operators import (
    AttentionScoreOp,
    AttentionValueOp,
    ElementwiseOp,
    GeMVOp,
    Operator,
    SFUOp,
)
from repro.llm.kv_cache import KVCache
from repro.llm.layers import build_decode_layer_ops, build_lm_head_op
from repro.llm.workload import DecodeWorkload, PrefillWorkload

__all__ = [
    "MODEL_ZOO",
    "ModelSpec",
    "get_model",
    "list_models",
    "Operator",
    "GeMVOp",
    "AttentionScoreOp",
    "AttentionValueOp",
    "SFUOp",
    "ElementwiseOp",
    "KVCache",
    "build_decode_layer_ops",
    "build_lm_head_op",
    "DecodeWorkload",
    "PrefillWorkload",
]
