"""Arithmetic-intensity helpers for LLM workloads.

The motivating observation of the paper (Fig. 1a, Fig. 3a) is that the decode
phase of single-batch LLM inference has an arithmetic intensity of roughly
2 ops/byte under INT8 quantization — orders of magnitude below both other AI
workloads and hardware compute/bandwidth ratios.  These helpers compute that
number directly from the workload model.
"""

from __future__ import annotations

from repro.llm.models import ModelSpec, get_model
from repro.llm.workload import DecodeWorkload, PrefillWorkload


def decode_arithmetic_intensity(
    model: "ModelSpec | str",
    seq_len: int = 1000,
    weight_bits: int = 8,
    activation_bits: int = 8,
) -> float:
    """Ops/byte of one decode step of ``model`` under the given quantization."""
    if isinstance(model, str):
        model = get_model(model)
    workload = DecodeWorkload(
        model,
        seq_len=seq_len,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
    )
    return workload.arithmetic_intensity


def prefill_arithmetic_intensity(
    model: "ModelSpec | str",
    prompt_len: int = 512,
    weight_bits: int = 8,
    activation_bits: int = 8,
) -> float:
    """Ops/byte of the prefill phase (weights amortised over all prompt tokens)."""
    if isinstance(model, str):
        model = get_model(model)
    workload = PrefillWorkload(
        model,
        prompt_len=prompt_len,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
    )
    return workload.arithmetic_intensity


def gemv_reduction_ratio(rows: int, cols: int, activation_bits: int = 8) -> float:
    """Reduction ratio of a GeMV: input data size over output data size.

    For the paper's smallest 4096x4096 matrix this is ~4096 — about 100x
    larger than the workloads earlier in-storage-computing systems target
    (Fig. 1b).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    input_bytes = rows * cols + cols * activation_bits / 8
    output_bytes = rows * activation_bits / 8
    return input_bytes / output_bytes
