"""Whole-model decode and prefill workloads.

A :class:`DecodeWorkload` expands a model into the full per-token operator
stream (all layers plus the LM head) and exposes the aggregate quantities the
performance model, the traffic model and the roofline analysis consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.llm.layers import build_decode_layer_ops, build_lm_head_op
from repro.llm.models import ModelSpec, get_model
from repro.llm.operators import GeMVOp, Operator, Placement


@dataclass
class LayerOps:
    """Operators of one decoder layer, with convenient per-layer aggregates."""

    index: int
    operators: List[Operator]

    @property
    def gemv_ops(self) -> List[GeMVOp]:
        """The weight GeMVs of this layer (the flash+NPU work)."""
        return [op for op in self.operators if isinstance(op, GeMVOp)]

    @property
    def weight_bytes(self) -> float:
        return sum(op.weight_bytes for op in self.operators)

    @property
    def kv_bytes(self) -> float:
        return sum(op.kv_bytes for op in self.operators)

    @property
    def activation_bytes(self) -> float:
        return sum(op.activation_bytes for op in self.operators)

    @property
    def compute_ops(self) -> float:
        return sum(op.ops for op in self.operators)

    @property
    def sfu_ops(self) -> float:
        """Operations executed on the SFU / element-wise units only."""
        return sum(
            op.ops
            for op in self.operators
            if op.placement is Placement.NPU_ONLY and not isinstance(op, GeMVOp)
        )


@dataclass
class DecodeWorkload:
    """One decode step (one generated token) of a model.

    Parameters
    ----------
    model:
        Architecture, or model name resolvable by :func:`repro.llm.get_model`.
    seq_len:
        Number of tokens already in the KV cache.
    weight_bits / activation_bits / kv_bits:
        Quantization widths; the paper's default configuration is W8A8 with a
        16-bit KV cache.
    include_lm_head:
        Whether to include the final vocabulary projection.  The paper's
        traffic numbers include it (the LM head weights also live in flash).
    """

    model: ModelSpec
    seq_len: int = 1000
    weight_bits: int = 8
    activation_bits: int = 8
    kv_bits: int = 16
    include_lm_head: bool = True
    _layers: List[LayerOps] = field(default_factory=list, repr=False)
    _lm_head: GeMVOp = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        layer_ops = build_decode_layer_ops(
            self.model,
            seq_len=self.seq_len,
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            kv_bits=self.kv_bits,
        )
        # Every decoder layer executes the same operator pattern during
        # decode, so expand once and replicate.
        self._layers = [
            LayerOps(index=i, operators=list(layer_ops))
            for i in range(self.model.num_layers)
        ]
        self._lm_head = build_lm_head_op(
            self.model,
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
        )

    # -- structure ----------------------------------------------------------
    @property
    def layers(self) -> Sequence[LayerOps]:
        return self._layers

    @property
    def lm_head(self) -> GeMVOp:
        return self._lm_head

    def iter_operators(self) -> Iterator[Operator]:
        """Iterate over every operator of the decode step in order."""
        for layer in self._layers:
            yield from layer.operators
        if self.include_lm_head:
            yield self._lm_head

    # -- aggregates -----------------------------------------------------------
    @property
    def gemv_weight_bytes(self) -> float:
        """Bytes of weights the GeMVs must stream per generated token."""
        total = sum(layer.weight_bytes for layer in self._layers)
        if self.include_lm_head:
            total += self._lm_head.weight_bytes
        return total

    @property
    def gemv_weight_elements(self) -> int:
        total = sum(
            op.weight_elements for layer in self._layers for op in layer.gemv_ops
        )
        if self.include_lm_head:
            total += self._lm_head.weight_elements
        return total

    @property
    def kv_cache_bytes(self) -> float:
        """KV-cache bytes read from DRAM per generated token."""
        return sum(layer.kv_bytes for layer in self._layers)

    @property
    def activation_bytes(self) -> float:
        total = sum(layer.activation_bytes for layer in self._layers)
        if self.include_lm_head:
            total += self._lm_head.activation_bytes
        return total

    @property
    def total_ops(self) -> float:
        """Arithmetic operations per generated token."""
        total = sum(layer.compute_ops for layer in self._layers)
        if self.include_lm_head:
            total += self._lm_head.ops
        return total

    @property
    def total_bytes(self) -> float:
        return self.gemv_weight_bytes + self.kv_cache_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte of the whole decode step (≈2 for W8A8, see Fig. 1a)."""
        return self.total_ops / self.total_bytes

    def per_layer_gemv_shapes(self) -> List[tuple]:
        """(rows, cols) of every weight GeMV in one layer (used by the tiler)."""
        return [(op.rows, op.cols) for op in self._layers[0].gemv_ops]


@dataclass
class PrefillWorkload:
    """The prefill phase: all prompt tokens processed in parallel.

    Used only for the arithmetic-intensity comparison (Fig. 1a / 3a); the
    paper's performance evaluation reports decode throughput.
    """

    model: ModelSpec
    prompt_len: int = 512
    weight_bits: int = 8
    activation_bits: int = 8
    kv_bits: int = 16

    def __post_init__(self) -> None:
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        if self.prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        self._layer_ops = build_decode_layer_ops(
            self.model,
            seq_len=0,
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            kv_bits=self.kv_bits,
            batch_tokens=self.prompt_len,
        )

    @property
    def total_ops(self) -> float:
        return self.model.num_layers * sum(op.ops for op in self._layer_ops)

    @property
    def total_bytes(self) -> float:
        per_layer = sum(op.total_bytes for op in self._layer_ops)
        return self.model.num_layers * per_layer

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte; two to three orders of magnitude above decode."""
        return self.total_ops / self.total_bytes
