"""Decoder-layer operator graphs.

:func:`build_decode_layer_ops` expands one decoder layer of a model into the
ordered list of operators a single decode step executes, following the
compute flow of Fig. 5 in the paper:

1. Q/K/V projections (weight GeMVs, flash + NPU),
2. attention against the KV cache (NPU + DRAM),
3. softmax (SFU on the NPU),
4. output projection and FFN (weight GeMVs, flash + NPU),
5. residual adds / norms / activations (element-wise on the NPU).
"""

from __future__ import annotations

from typing import List

from repro.llm.models import ModelSpec
from repro.llm.operators import (
    AttentionScoreOp,
    AttentionValueOp,
    ElementwiseOp,
    GeMVOp,
    Operator,
    SFUOp,
)


def build_decode_layer_ops(
    model: ModelSpec,
    seq_len: int,
    weight_bits: int = 8,
    activation_bits: int = 16,
    kv_bits: int = 16,
    batch_tokens: int = 1,
) -> List[Operator]:
    """Build the operator list for one decoder layer of one decode step.

    Parameters
    ----------
    model:
        Architecture to expand.
    seq_len:
        Number of previously cached tokens the attention reads.
    weight_bits / activation_bits / kv_bits:
        Quantization widths (W8A8 uses 8/8, W4A16 uses 4/16).
    batch_tokens:
        Tokens processed together; 1 for decode, prompt length for prefill.
    """
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")

    h = model.hidden_size
    ops: List[Operator] = []

    # Pre-attention norm.
    ops.append(ElementwiseOp(name="attn_norm", elements=h * batch_tokens))

    # Q/K/V projections.
    ops.append(
        GeMVOp(
            name="w_q", rows=h, cols=h,
            weight_bits=weight_bits, activation_bits=activation_bits,
            batch_tokens=batch_tokens,
        )
    )
    ops.append(
        GeMVOp(
            name="w_k", rows=model.kv_dim, cols=h,
            weight_bits=weight_bits, activation_bits=activation_bits,
            batch_tokens=batch_tokens,
        )
    )
    ops.append(
        GeMVOp(
            name="w_v", rows=model.kv_dim, cols=h,
            weight_bits=weight_bits, activation_bits=activation_bits,
            batch_tokens=batch_tokens,
        )
    )

    if model.family == "llama2":
        # Rotary position embedding on Q and K.
        ops.append(SFUOp(name="rope", elements=(h + model.kv_dim) * batch_tokens))

    # Attention over the cache (+ the freshly produced token).
    effective_len = seq_len + batch_tokens
    ops.append(
        AttentionScoreOp(
            name="qk_scores",
            num_heads=model.num_heads,
            head_dim=model.head_dim,
            seq_len=effective_len,
            kv_bits=kv_bits,
            activation_bits=activation_bits,
        )
    )
    ops.append(
        SFUOp(name="softmax", elements=model.num_heads * effective_len * batch_tokens)
    )
    ops.append(
        AttentionValueOp(
            name="sv_context",
            num_heads=model.num_heads,
            head_dim=model.head_dim,
            seq_len=effective_len,
            kv_bits=kv_bits,
            activation_bits=activation_bits,
        )
    )

    # Output projection.
    ops.append(
        GeMVOp(
            name="w_o", rows=h, cols=h,
            weight_bits=weight_bits, activation_bits=activation_bits,
            batch_tokens=batch_tokens,
        )
    )
    ops.append(ElementwiseOp(name="attn_residual", elements=h * batch_tokens))

    # FFN.
    ops.append(ElementwiseOp(name="ffn_norm", elements=h * batch_tokens))
    f = model.ffn_hidden_size
    if model.uses_gated_ffn:
        ops.append(
            GeMVOp(
                name="w_gate", rows=f, cols=h,
                weight_bits=weight_bits, activation_bits=activation_bits,
                batch_tokens=batch_tokens,
            )
        )
        ops.append(
            GeMVOp(
                name="w_up", rows=f, cols=h,
                weight_bits=weight_bits, activation_bits=activation_bits,
                batch_tokens=batch_tokens,
            )
        )
        ops.append(SFUOp(name="silu_gate", elements=f * batch_tokens))
        ops.append(
            GeMVOp(
                name="w_down", rows=h, cols=f,
                weight_bits=weight_bits, activation_bits=activation_bits,
                batch_tokens=batch_tokens,
            )
        )
    else:
        ops.append(
            GeMVOp(
                name="w_up", rows=f, cols=h,
                weight_bits=weight_bits, activation_bits=activation_bits,
                batch_tokens=batch_tokens,
            )
        )
        ops.append(SFUOp(name="relu", elements=f * batch_tokens, ops_per_element=1.0))
        ops.append(
            GeMVOp(
                name="w_down", rows=h, cols=f,
                weight_bits=weight_bits, activation_bits=activation_bits,
                batch_tokens=batch_tokens,
            )
        )
    ops.append(ElementwiseOp(name="ffn_residual", elements=h * batch_tokens))

    return ops


def build_lm_head_op(
    model: ModelSpec,
    weight_bits: int = 8,
    activation_bits: int = 16,
    batch_tokens: int = 1,
) -> GeMVOp:
    """Build the final vocabulary projection (LM head) GeMV."""
    return GeMVOp(
        name="lm_head",
        rows=model.vocab_size,
        cols=model.hidden_size,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        batch_tokens=batch_tokens,
    )
