"""Cambricon-LLM reproduction library.

A pure-Python model of the chiplet NPU + in-flash-computing architecture of
*Cambricon-LLM: A Chiplet-Based Hybrid Architecture for On-Device Inference
of 70B LLM* (MICRO 2024), including the NAND-flash and NPU substrates, the
hardware-aware tiling scheduler, the outlier-oriented on-die ECC, the
offloading baselines and the full benchmark harness that regenerates the
paper's tables and figures.

Quick start — the unified Backend/Request/Result API drives every system::

    from repro import ExperimentRunner, InferenceRequest, get_backend

    # One request on one backend:
    result = get_backend("cambricon").run(
        InferenceRequest(model="llama2-70b", config="L", seq_len=4000)
    )
    print(result.tokens_per_second, result.time_to_first_token_s)

    # A memoized, concurrent grid across systems (Fig. 9 in four lines):
    runner = ExperimentRunner()
    results = runner.run_grid(
        backends=["cambricon", "flexgen-ssd", "flexgen-dram", "mlc-llm"],
        models=["llama2-7b", "llama2-70b"],
        configs=["S", "M", "L"],
    )
    print(results.to_markdown())

New systems plug in with ``register_backend("name", MyBackend)`` and
immediately work in grids and the ``python -m repro grid`` CLI.  The
lower-level models (:class:`InferenceEngine`, the baseline classes, the ECC
and accuracy studies) remain available for system-specific detail.

On top of the single-job API, :mod:`repro.serving` simulates *queues* of
timestamped requests — seeded workload generators, pluggable schedulers
(FCFS / static / continuous batching), SLO percentile reports and a
``find_max_qps`` capacity search — also exposed as ``python -m repro serve``.
:mod:`repro.fleet` scales that to multi-device clusters: routing policies,
tensor/pipeline sharding transforms and a ``size_fleet`` capacity planner
("how many chiplets for X qps under this SLO"), exposed as
``python -m repro fleet``.

Both event loops fast-forward through provably uneventful decode
stretches (occupancy coalescing), so million-step traces simulate in
seconds while staying byte-identical to the step-by-step reference;
``benchmarks/perf/`` tracks the trajectory in ``BENCH_serving.json``.

:mod:`repro.memory` models the flash-backed KV memory under all of it: a
:class:`MemorySpec` (DRAM budget + flash geometry) attached to a
continuous-batching scheduler makes admission capacity-aware — cold KV
spills to flash through a write-coalescing cache and a page-mapped FTL,
refills pay modeled channel time, sharding multiplies a replica's
capacity (rescuing OOM configs in ``size_fleet``), and the ``headroom``
router steers arrivals to the replica with the most free KV DRAM.

:mod:`repro.obs` watches all of it without perturbing any of it: a
:class:`SpanRecorder` passed to either event loop captures request
phases, admission verdicts, coalescing caps, spills and routing
decisions on the *simulated* clock (exportable as Perfetto/Chrome trace
JSON), a :class:`TimelineCollector` folds the same emissions into
fixed-width metric windows (rates, goodput, queue depth, utilization,
KV DRAM occupancy, exact per-window latency percentiles) with
SLO-burn-rate alert rules evaluated as windows close, a
:func:`critical_path` pass attributes where the tail latency and the
makespan actually went, a :class:`MetricsRegistry` absorbs a finished
report into a Prometheus-text :class:`MetricsSnapshot`, and a
:class:`PhaseProfiler` times the loops' own wall-clock phases.
Attaching any of them never changes a trace CSV, a report, or a
makespan — the disabled path costs zero per-event work.

:mod:`repro.faults` turns both event loops into chaos rigs without
losing determinism: a :class:`FaultSpec` injects seeded crash / recover
windows, transient slowdowns and flaky per-attempt failures as FAULT
events on the simulated clock, a :class:`RetryPolicy` plus per-request
deadlines (and optional hedging) model client resilience, and
health-aware routing (``get_router("failover")``, or
``exclude_unhealthy=True`` on any policy) steers arrivals around dead
replicas.  Reports grow a :class:`FaultReport` — availability,
time-to-recover, shed / timed-out / failed / retried counts — and a
fixed seed replays the whole outage byte for byte.  With
``faults=None`` the plain loops run untouched.
"""

from repro.api import (
    Backend,
    CambriconBackend,
    ExperimentRunner,
    FlexGenDRAMBackend,
    FlexGenSSDBackend,
    InferenceRequest,
    MLCLLMBackend,
    OffloadingBackend,
    ResultSet,
    RunResult,
    get_backend,
    list_backends,
    register_backend,
)
from repro.core import (
    CambriconLLMConfig,
    DecodeReport,
    InferenceEngine,
    TileShape,
    TilingStrategy,
    WorkloadPartition,
    cambricon_llm_l,
    cambricon_llm_m,
    cambricon_llm_s,
    get_config,
)
from repro.llm import DecodeWorkload, ModelSpec, get_model, list_models
from repro.flash import FlashGeometry, FlashTiming, SliceControl, SlicePolicy
from repro.npu import NPUSpec
from repro.baselines import FlexGenDRAM, FlexGenSSD, MLCLLM
from repro.ecc import BitFlipErrorModel, PageCodec, PageLayout
from repro.accuracy import ErrorInjectionStudy, ProxyLLM, paper_tasks
from repro.serving import (
    ContinuousBatchScheduler,
    FCFSScheduler,
    PoissonWorkload,
    ServingReport,
    SLOSpec,
    StaticBatchScheduler,
    find_max_qps,
    load_bundled_trace,
    simulate,
)
from repro.fleet import (
    Device,
    FleetReport,
    FleetSizingResult,
    JoinShortestQueueRouter,
    LeastWorkRouter,
    MemoryHeadroomRouter,
    RoundRobinRouter,
    Router,
    SLOAwareRouter,
    ShardedBackend,
    ShardingSpec,
    build_fleet,
    simulate_fleet,
    size_fleet,
)
from repro.memory import (
    KVFootprint,
    KVMemoryModel,
    MemoryReport,
    MemorySpec,
)
from repro.faults import (
    FaultInjector,
    FaultReport,
    FaultSpec,
    RetryPolicy,
)
from repro.obs import (
    AlertLog,
    BurnRateRule,
    MetricsRegistry,
    MetricsSnapshot,
    NullRecorder,
    PhaseProfiler,
    Recorder,
    SpanRecorder,
    SustainedRule,
    TeeRecorder,
    ThresholdRule,
    TimelineCollector,
    critical_path,
    fleet_snapshot,
    serving_snapshot,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # unified API
    "Backend",
    "InferenceRequest",
    "RunResult",
    "ResultSet",
    "ExperimentRunner",
    "register_backend",
    "get_backend",
    "list_backends",
    "CambriconBackend",
    "OffloadingBackend",
    "FlexGenSSDBackend",
    "FlexGenDRAMBackend",
    "MLCLLMBackend",
    # core performance model
    "CambriconLLMConfig",
    "InferenceEngine",
    "DecodeReport",
    "TileShape",
    "TilingStrategy",
    "WorkloadPartition",
    "cambricon_llm_s",
    "cambricon_llm_m",
    "cambricon_llm_l",
    "get_config",
    # model zoo and workloads
    "ModelSpec",
    "DecodeWorkload",
    "get_model",
    "list_models",
    # substrates
    "FlashGeometry",
    "FlashTiming",
    "SliceControl",
    "SlicePolicy",
    "NPUSpec",
    # baselines
    "FlexGenSSD",
    "FlexGenDRAM",
    "MLCLLM",
    # reliability and accuracy studies
    "BitFlipErrorModel",
    "PageCodec",
    "PageLayout",
    "ErrorInjectionStudy",
    "ProxyLLM",
    "paper_tasks",
    # serving simulator
    "PoissonWorkload",
    "FCFSScheduler",
    "StaticBatchScheduler",
    "ContinuousBatchScheduler",
    "simulate",
    "ServingReport",
    "SLOSpec",
    "find_max_qps",
    "load_bundled_trace",
    # fleet simulator
    "Device",
    "FleetReport",
    "FleetSizingResult",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "LeastWorkRouter",
    "SLOAwareRouter",
    "MemoryHeadroomRouter",
    "ShardedBackend",
    "ShardingSpec",
    "build_fleet",
    "simulate_fleet",
    "size_fleet",
    # flash-backed KV memory model
    "MemorySpec",
    "KVFootprint",
    "KVMemoryModel",
    "MemoryReport",
    # fault injection and resilience
    "FaultSpec",
    "FaultInjector",
    "FaultReport",
    "RetryPolicy",
    # observability
    "Recorder",
    "NullRecorder",
    "SpanRecorder",
    "TeeRecorder",
    "TimelineCollector",
    "AlertLog",
    "ThresholdRule",
    "SustainedRule",
    "BurnRateRule",
    "critical_path",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PhaseProfiler",
    "serving_snapshot",
    "fleet_snapshot",
]
