"""Cambricon-LLM reproduction library.

A pure-Python model of the chiplet NPU + in-flash-computing architecture of
*Cambricon-LLM: A Chiplet-Based Hybrid Architecture for On-Device Inference
of 70B LLM* (MICRO 2024), including the NAND-flash and NPU substrates, the
hardware-aware tiling scheduler, the outlier-oriented on-die ECC, the
offloading baselines and the full benchmark harness that regenerates the
paper's tables and figures.

Quick start::

    from repro import InferenceEngine, cambricon_llm_l

    engine = InferenceEngine(cambricon_llm_l())
    report = engine.decode_report("llama2-70b")
    print(report.tokens_per_second)
"""

from repro.core import (
    CambriconLLMConfig,
    DecodeReport,
    InferenceEngine,
    TileShape,
    TilingStrategy,
    WorkloadPartition,
    cambricon_llm_l,
    cambricon_llm_m,
    cambricon_llm_s,
    get_config,
)
from repro.llm import DecodeWorkload, ModelSpec, get_model, list_models
from repro.flash import FlashGeometry, FlashTiming, SliceControl, SlicePolicy
from repro.npu import NPUSpec
from repro.baselines import FlexGenDRAM, FlexGenSSD, MLCLLM
from repro.ecc import BitFlipErrorModel, PageCodec, PageLayout
from repro.accuracy import ErrorInjectionStudy, ProxyLLM, paper_tasks

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CambriconLLMConfig",
    "InferenceEngine",
    "DecodeReport",
    "TileShape",
    "TilingStrategy",
    "WorkloadPartition",
    "cambricon_llm_s",
    "cambricon_llm_m",
    "cambricon_llm_l",
    "get_config",
    "ModelSpec",
    "DecodeWorkload",
    "get_model",
    "list_models",
    "FlashGeometry",
    "FlashTiming",
    "SliceControl",
    "SlicePolicy",
    "NPUSpec",
    "FlexGenSSD",
    "FlexGenDRAM",
    "MLCLLM",
    "BitFlipErrorModel",
    "PageCodec",
    "PageLayout",
    "ErrorInjectionStudy",
    "ProxyLLM",
    "paper_tasks",
]
