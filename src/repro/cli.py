"""Command-line interface.

Installed as ``python -m repro``; every subcommand drives the unified
:mod:`repro.api` Backend/Request/Result layer:

* ``decode``  — decode-speed report for one model on one configuration,
* ``compare`` — Cambricon-LLM-S/M/L versus the FlexGen / MLC-LLM baselines,
* ``sweep``   — channel/chip scalability sweep for one model (Fig. 15 style),
* ``grid``    — cartesian (backend x model x config x seq_len x batch)
  experiment grid with memoized concurrent execution and CSV/markdown export,
* ``serve``   — discrete-event multi-request serving simulation (workload ->
  scheduler -> backend) with SLO percentiles, goodput and capacity search,
* ``fleet``   — multi-device fleet simulation (routing, sharding, mixed
  backends) and ``size_fleet`` capacity planning (``--size-for-qps``).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.api import (
    CambriconBackend,
    ExperimentRunner,
    InferenceRequest,
    list_backends,
)
from repro.core import get_config
from repro.fleet import (
    ROUTERS,
    ShardingSpec,
    build_fleet,
    get_router,
    simulate_fleet,
    size_fleet,
)
from repro.llm.models import list_models
from repro.reporting import print_table
from repro.serving import (
    BackendCostModel,
    ConstantRateWorkload,
    ContinuousBatchScheduler,
    FCFSScheduler,
    OnOffWorkload,
    PoissonWorkload,
    SLOSpec,
    StaticBatchScheduler,
    TraceWorkload,
    find_max_qps,
    list_bundled_traces,
    load_bundled_trace,
    simulate,
)

_CAMBRICON_CONFIGS = ("S", "M", "L")
_BASELINE_BACKENDS = ("flexgen-ssd", "flexgen-dram", "mlc-llm")
_SCHEDULERS = {
    "fcfs": lambda args, memory=None: FCFSScheduler(),
    "static": lambda args, memory=None: StaticBatchScheduler(max_batch=args.max_batch),
    "continuous": lambda args, memory=None: ContinuousBatchScheduler(
        max_batch=args.max_batch, memory=memory
    ),
}


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "model",
        choices=list_models(),
        help="model to evaluate (paper zoo: OPT and Llama2 families)",
    )


def _speed_cell(result) -> object:
    return "OOM" if result.out_of_memory else result.tokens_per_second


def _decode_command(args: argparse.Namespace) -> int:
    backend = CambriconBackend(config=get_config(args.config))
    result = backend.run(InferenceRequest(model=args.model, seq_len=args.seq_len))
    if result.out_of_memory:
        print(f"{args.model} does not fit on {result.backend_name}: {result.error}")
        return 1
    report = result.detail
    print_table(
        f"Decode report — {report.model_name} on {report.config_name}",
        ["metric", "value"],
        [
            ["decode speed (token/s)", report.tokens_per_second],
            ["latency per token (ms)", 1e3 * report.token_seconds],
            ["time to first token (ms)", 1e3 * result.time_to_first_token_s],
            ["flash share alpha", report.alpha],
            ["tile", report.tile],
            ["channel utilisation (%)", 100 * report.channel_utilization],
            ["external traffic per token (GB)", report.traffic.external_bytes / 1e9],
            ["energy per token (J)", result.energy_joules_per_token],
            ["bottleneck", result.bottleneck],
        ],
    )
    return 0


def _compare_command(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    rows = []
    for config in _CAMBRICON_CONFIGS:
        result = runner.run(
            "cambricon",
            InferenceRequest(model=args.model, config=config, seq_len=args.seq_len),
        )
        rows.append([result.backend_name, _speed_cell(result)])
    for backend in _BASELINE_BACKENDS:
        result = runner.run(
            backend, InferenceRequest(model=args.model, seq_len=args.seq_len)
        )
        rows.append([result.backend_name, _speed_cell(result)])
    print_table(
        f"Decode speed comparison — {args.model} at seq_len {args.seq_len} (token/s)",
        ["system", "token/s"],
        rows,
    )
    return 0


def _sweep_command(args: argparse.Namespace) -> int:
    base = get_config(args.config)
    request = InferenceRequest(model=args.model, seq_len=args.seq_len)
    rows = []
    for chips in args.chips:
        backend = CambriconBackend(
            config=base.with_flash_scale(chips_per_channel=chips), energy=False
        )
        result = backend.run(request)
        rows.append(
            [
                backend.config.flash.channels,
                chips,
                "OOM" if result.out_of_memory else result.tokens_per_second,
                (
                    100 * result.notes["channel_utilization"]
                    if result.supported
                    else "-"
                ),
            ]
        )
    print_table(
        f"Chip-count sweep — {args.model} on {base.name}",
        ["channels", "chips/channel", "token/s", "channel usage (%)"],
        rows,
    )
    return 0


def _grid_command(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(max_workers=args.workers)
    results = runner.run_grid(
        backends=args.backends or list_backends(),
        models=args.models,
        configs=args.configs,
        seq_lens=args.seq_lens,
        batch_sizes=args.batch_sizes,
        gen_tokens=args.gen_tokens,
    )
    headers, rows = results.to_rows()
    if args.markdown:
        print(results.to_markdown())
    else:
        print_table("Experiment grid", headers, rows)
    if args.csv is not None:
        results.to_csv(args.csv)
        print(f"\nWrote {len(results)} rows to {args.csv}")
    info = runner.cache_info()
    print(f"\n{len(results)} results ({info['misses']} runs, {info['hits']} cache hits)")
    if args.show_cache_stats:
        stats = runner.stats()
        rows = [
            ["profile hits", stats["hits"]],
            ["profile misses", stats["misses"]],
            ["backend evaluations", stats["misses"]],
            ["profile entries", stats["size"]],
            ["in flight", stats["in_flight"]],
        ]
        if args.markdown:
            from repro.reporting import format_markdown_table

            print()
            print(format_markdown_table(["counter", "value"], rows))
        else:
            print_table("Cache stats", ["counter", "value"], rows)
    return 0


def _serving_slo(args: argparse.Namespace) -> Optional[SLOSpec]:
    if args.slo_ttft is None and args.slo_tpot is None and args.slo_e2e is None:
        return None
    return SLOSpec(
        ttft_s=args.slo_ttft,
        tpot_s=args.slo_tpot,
        e2e_s=args.slo_e2e,
        min_attainment=args.slo_attainment,
    )


def _serving_memory(args: argparse.Namespace):
    """The per-device :class:`repro.memory.MemorySpec` the flags ask for.

    ``--dram-gb`` / ``--flash`` carve a KV memory model out of the
    ``--config`` hardware description; only the continuous scheduler
    admits by footprint, so other schedulers reject the flags instead of
    silently ignoring them.
    """
    if args.dram_gb is None and args.flash_gb is None:
        return None
    if args.scheduler != "continuous":
        raise SystemExit(
            "--dram-gb/--flash model KV admission for the continuous "
            "scheduler; pass --scheduler continuous"
        )
    if args.dram_gb is not None and args.dram_gb <= 0:
        raise SystemExit("--dram-gb must be positive")
    if args.flash_gb is not None and args.flash_gb < 0:
        raise SystemExit("--flash must be non-negative")
    from repro.memory import MemorySpec

    overrides = {}
    if args.dram_gb is not None:
        overrides["dram_bytes"] = int(args.dram_gb * (1 << 30))
    if args.flash_gb is not None:
        overrides["spill_capacity_bytes"] = int(args.flash_gb * (1 << 30))
    return MemorySpec.from_config(get_config(args.config), **overrides)


def _parse_faults(spec: Optional[str]):
    """``--faults`` key=value entries as a :class:`repro.faults.FaultSpec`.

    Comma-separated ``key=value`` pairs; ``crash-window=DEV:START:DUR``
    and ``slow-window=DEV:START:DUR[:FACTOR]`` may repeat to stack
    explicit windows.  Example::

        --faults crash-mtbf=300,mttr=20,flaky=0.01,seed=7
        --faults crash-window=1:30:10,slow-window=0:60:30:2.5
    """
    if spec is None:
        return None
    from repro.faults import FaultSpec

    scalar = {
        "seed": ("seed", int),
        "crash-mtbf": ("crash_mtbf_s", float),
        "mttr": ("crash_mttr_s", float),
        "slow-mtbf": ("slow_mtbf_s", float),
        "slow-duration": ("slow_duration_s", float),
        "slow-factor": ("slow_factor", float),
        "flaky": ("flaky_prob", float),
    }
    kwargs: dict = {}
    crash_windows: List[tuple] = []
    slow_windows: List[tuple] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        key, equals, value = entry.partition("=")
        key = key.strip().lower()
        if not equals:
            raise SystemExit(f"--faults: expected key=value, got {entry!r}")
        try:
            if key == "crash-window":
                device, start, duration = value.split(":")
                crash_windows.append((int(device), float(start), float(duration)))
            elif key == "slow-window":
                parts = value.split(":")
                if len(parts) not in (3, 4):
                    raise ValueError(value)
                slow_windows.append(
                    (int(parts[0]),) + tuple(float(part) for part in parts[1:])
                )
            elif key in scalar:
                field, cast = scalar[key]
                kwargs[field] = cast(value)
            else:
                raise SystemExit(
                    f"--faults: unknown key {key!r}; known: "
                    f"{', '.join(sorted(scalar))}, crash-window, slow-window"
                )
        except (TypeError, ValueError):
            raise SystemExit(f"--faults: bad value in {entry!r}")
    if crash_windows:
        kwargs["crash_windows"] = tuple(crash_windows)
    if slow_windows:
        kwargs["slow_windows"] = tuple(slow_windows)
    try:
        faults = FaultSpec(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"--faults: {exc}")
    if not faults.any_faults:
        raise SystemExit(
            "--faults: the spec injects nothing; give it an MTBF, a window "
            "or a flaky probability"
        )
    return faults


def _parse_retry(spec: Optional[str]):
    """``--retry`` key=value entries as a :class:`repro.faults.RetryPolicy`.

    Example: ``--retry attempts=3,backoff=0.5,multiplier=2,jitter=0.1``;
    ``hedge-after=S`` arms a hedged second attempt for slow requests.
    """
    if spec is None:
        return None
    from repro.faults import RetryPolicy

    scalar = {
        "attempts": ("max_attempts", int),
        "backoff": ("backoff_s", float),
        "multiplier": ("multiplier", float),
        "jitter": ("jitter", float),
        "seed": ("seed", int),
        "hedge-after": ("hedge_after_s", float),
    }
    kwargs: dict = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        key, equals, value = entry.partition("=")
        key = key.strip().lower()
        if not equals:
            raise SystemExit(f"--retry: expected key=value, got {entry!r}")
        if key not in scalar:
            raise SystemExit(
                f"--retry: unknown key {key!r}; known: {', '.join(sorted(scalar))}"
            )
        field, cast = scalar[key]
        try:
            kwargs[field] = cast(value)
        except (TypeError, ValueError):
            raise SystemExit(f"--retry: bad value in {entry!r}")
    try:
        return RetryPolicy(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"--retry: {exc}")


def _resilience_kwargs(args: argparse.Namespace, searching: bool) -> dict:
    """The ``faults=/retry=/deadline_s=`` kwargs the chaos flags ask for.

    A capacity/sizing search probes many simulations against the *clean*
    SLO question, so the chaos flags are rejected there rather than
    silently chaos-testing every probe.
    """
    if (
        args.faults is None
        and args.retry is None
        and args.deadline_s is None
    ):
        return {}
    if searching:
        raise SystemExit(
            "--faults/--retry/--deadline-s chaos-test one simulation; they "
            "cannot follow a capacity/sizing search"
        )
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("--deadline-s must be positive")
    return {
        "faults": _parse_faults(args.faults),
        "retry": _parse_retry(args.retry),
        "deadline_s": args.deadline_s,
    }


def _validate_trace_flags(args: argparse.Namespace) -> None:
    """Reject trace flags that would be silently dropped.

    Called at the top of both command handlers so the capacity/sizing
    branches (which never build a workload) validate them too.
    """
    if args.trace is not None and args.bundled_trace is not None:
        raise SystemExit("pass either --trace or --bundled-trace, not both")
    if args.workload != "trace" and (
        args.trace is not None or args.bundled_trace is not None
    ):
        raise SystemExit(
            f"--trace/--bundled-trace replay a recorded trace; they do nothing "
            f"for a {args.workload!r} workload (use --workload trace)"
        )


def _serving_workload(args: argparse.Namespace, payload: InferenceRequest):
    _validate_trace_flags(args)
    if args.workload == "poisson":
        return PoissonWorkload(args.qps, payload, seed=args.seed)
    if args.workload == "constant":
        return ConstantRateWorkload(args.qps, payload, seed=args.seed)
    if args.workload == "onoff":
        return OnOffWorkload(
            args.qps,
            payload,
            on_seconds=args.on_seconds,
            off_seconds=args.off_seconds,
            seed=args.seed,
        )
    if args.trace is not None:
        return TraceWorkload.from_csv(args.trace)
    if args.bundled_trace is not None:
        try:
            return load_bundled_trace(args.bundled_trace)
        except KeyError as exc:
            raise SystemExit(f"--bundled-trace: {exc.args[0]}")
    raise SystemExit("--workload trace requires --trace PATH or --bundled-trace NAME")


def _workload_arrivals(args: argparse.Namespace, payload: InferenceRequest):
    workload = _serving_workload(args, payload)
    if args.workload == "trace":
        # Default to replaying the whole trace; --num-requests truncates.
        return workload.generate(args.num_requests)
    return workload.generate(100 if args.num_requests is None else args.num_requests)


def _print_probe_trail(args: argparse.Namespace, headers, rows) -> None:
    """The audit trail of a capacity/sizing search, one row per probe."""
    if args.markdown:
        from repro.reporting import format_markdown_table

        print()
        print(format_markdown_table(headers, rows))
    else:
        print_table("Probe trail", headers, rows)


def _emit_report(
    args: argparse.Namespace,
    title: str,
    headers,
    rows,
    report,
    probe_rows=None,
    extra_tables=(),
) -> int:
    """Render a report (plus optional extra tables and probe trail) and
    write the trace CSV — the shared epilogue of ``serve`` and ``fleet``."""
    if args.markdown:
        from repro.reporting import format_markdown_table

        print(format_markdown_table(headers, rows))
        for _, extra_headers, extra_rows in extra_tables:
            print()
            print(format_markdown_table(extra_headers, extra_rows))
    else:
        print_table(title, headers, rows)
        for extra_title, extra_headers, extra_rows in extra_tables:
            print_table(extra_title, extra_headers, extra_rows)
    if probe_rows is not None:
        _print_probe_trail(args, *probe_rows)
    if args.csv is not None:
        report.to_csv(args.csv)
        print(f"\nWrote {len(report.records)} request records to {args.csv}")
    return 0


def _emit_observability(args: argparse.Namespace, recorder, snapshot_fn) -> None:
    """Write ``--trace-out`` / ``--metrics-out`` artifacts, if asked for.

    ``snapshot_fn`` is a thunk building the :class:`repro.obs.MetricsSnapshot`
    (deferred so runs without ``--metrics-out`` never pay for one).
    """
    if recorder is not None:
        recorder.to_perfetto(args.trace_out)
        print(
            f"\nWrote {len(recorder.events)} trace events "
            f"(Perfetto JSON) to {args.trace_out}"
        )
    if args.metrics_out is not None:
        snapshot = snapshot_fn()
        snapshot.to_prometheus(args.metrics_out)
        print(
            f"Wrote {len(snapshot.samples)} metric samples "
            f"(Prometheus text) to {args.metrics_out}"
        )


def _serving_observers(args: argparse.Namespace, searching: bool):
    """Build the run's observers: ``(recorder, span_recorder, timeline)``.

    ``recorder`` is what the simulation gets (a single observer, a
    ``TeeRecorder`` composing both, or None); ``span_recorder`` feeds
    ``--trace-out`` / ``--attribution`` and ``timeline`` feeds
    ``--timeline-out`` / ``--alerts``.  A capacity/sizing search runs
    many simulations; a single trace or timeline of "the search" would
    interleave them meaninglessly, so every observer flag is rejected
    there rather than silently recording the last probe.
    """
    wants_spans = args.trace_out is not None or args.attribution
    wants_timeline = args.timeline_out is not None or args.alerts
    if not wants_spans and not wants_timeline:
        return None, None, None
    if searching:
        raise SystemExit(
            "--trace-out/--attribution/--timeline-out/--alerts observe one "
            "simulation; they cannot follow a capacity/sizing search"
        )
    span_recorder = timeline = None
    if wants_spans:
        from repro.obs import SpanRecorder

        span_recorder = SpanRecorder()
    if wants_timeline:
        from repro.obs import TimelineCollector, burn_rate_pack

        slo = _serving_slo(args)
        rules = ()
        if args.alerts:
            if slo is None:
                raise SystemExit(
                    "--alerts evaluates SLO burn-rate rules; give it an SLO "
                    "(--slo-ttft/--slo-tpot/--slo-e2e)"
                )
            rules = burn_rate_pack(slo.min_attainment, args.timeline_window)
        timeline = TimelineCollector(
            window_s=args.timeline_window, slo=slo, rules=rules
        )
    if span_recorder is not None and timeline is not None:
        from repro.obs import TeeRecorder

        return TeeRecorder(span_recorder, timeline), span_recorder, timeline
    # NB: not ``span_recorder or timeline`` — an empty SpanRecorder is falsy.
    single = span_recorder if span_recorder is not None else timeline
    return single, span_recorder, timeline


def _emit_timeline(args: argparse.Namespace, timeline, report) -> None:
    """Write ``--timeline-out`` and print the ``--alerts`` log."""
    if timeline is None:
        return
    if args.timeline_out is not None:
        timeline.to_csv(args.timeline_out)
        print(
            f"Wrote {len(timeline.to_rows())} timeline windows "
            f"({timeline.window_s:g}s wide) to {args.timeline_out}"
        )
    if args.alerts:
        log = report.alerts
        headers, rows = log.summary_rows()
        if not rows:
            print("\nAlerts: none fired")
        elif args.markdown:
            from repro.reporting import format_markdown_table

            print()
            print(format_markdown_table(headers, rows))
        else:
            print_table("Alerts (simulated clock)", headers, rows)


def _emit_attribution(args: argparse.Namespace, span_recorder) -> None:
    """Print the ``--attribution`` critical-path tables."""
    if not args.attribution:
        return
    from repro.obs import critical_path

    analysis = critical_path(span_recorder)
    tables = [
        ("Critical-path attribution", analysis.attribution_rows()),
        ("Makespan chains", analysis.chain_rows()),
    ]
    for title, (headers, rows) in tables:
        if args.markdown:
            from repro.reporting import format_markdown_table

            print()
            print(format_markdown_table(headers, rows))
        else:
            print_table(title, headers, rows)


def _cache_stats_table(cost_models, runner: ExperimentRunner):
    """One (title, headers, rows) extra table for ``--show-cache-stats``.

    ``latency *`` counters aggregate the distinct cost models' interned
    scalar lookups; ``profile *`` is the shared runner's backend-eval view.
    """
    seen = set()
    latency = {"hits": 0, "misses": 0, "size": 0}
    for cost in cost_models:
        if id(cost) in seen:
            continue
        seen.add(id(cost))
        info = cost.cache_info()
        latency["hits"] += info["latency_hits"]
        latency["misses"] += info["latency_misses"]
        latency["size"] += info["latency_size"]
    profile = runner.stats()
    rows = [
        ["cost models", len(seen)],
        ["latency hits", latency["hits"]],
        ["latency misses", latency["misses"]],
        ["latency entries", latency["size"]],
        ["profile hits", profile["hits"]],
        ["profile misses", profile["misses"]],
        ["backend evaluations", profile["misses"]],
        ["profile entries", profile["size"]],
    ]
    return ("Cache stats", ["counter", "value"], rows)


def _serve_command(args: argparse.Namespace) -> int:
    payload = InferenceRequest(
        model=args.model,
        config=args.config,
        seq_len=args.seq_len,
        gen_tokens=args.gen_tokens,
    )
    _validate_trace_flags(args)
    if args.show_probes and not args.find_max_qps:
        raise SystemExit("--show-probes requires --find-max-qps")
    if args.stream_trace is not None:
        if args.csv is not None:
            raise SystemExit("pass either --stream-trace or --csv, not both")
        if args.find_max_qps:
            raise SystemExit(
                "--stream-trace streams one simulation's trace; it cannot "
                "follow a capacity search"
            )
    if args.parallel < 1:
        raise SystemExit("--parallel must be at least 1")
    if args.parallel != 1 and not args.find_max_qps:
        raise SystemExit("--parallel parallelizes --find-max-qps probes")
    slo = _serving_slo(args)
    memory = _serving_memory(args)
    resilience = _resilience_kwargs(args, searching=args.find_max_qps)
    scheduler_factory = _SCHEDULERS[args.scheduler]
    runner = ExperimentRunner()
    cost = BackendCostModel(args.backend, runner=runner)
    probe_rows = None
    recorder, span_recorder, timeline = _serving_observers(
        args, searching=args.find_max_qps
    )

    if args.find_max_qps:
        if slo is None:
            raise SystemExit("--find-max-qps needs an SLO (--slo-ttft/tpot/e2e)")
        if args.workload != "poisson":
            raise SystemExit(
                "--find-max-qps bisects the rate of a Poisson arrival process; "
                f"it cannot search a {args.workload!r} workload"
            )
        capacity = find_max_qps(
            args.backend,
            payload,
            slo,
            scheduler_factory=lambda: scheduler_factory(args, memory),
            num_requests=100 if args.num_requests is None else args.num_requests,
            seed=args.seed,
            runner=runner,
            cost=cost,
            parallel=args.parallel,
        )
        report = capacity.report
        headers, rows = report.summary_rows()
        rows = [["max sustainable qps", capacity.max_qps],
                ["capacity probes", len(capacity.probes)]] + rows
        title = (
            f"Capacity search — {args.model} on {report.backend_name} "
            f"({report.scheduler_name} scheduler)"
        )
        if args.show_probes:
            probe_rows = (
                ["probe", "rate (qps)", "SLO met"],
                [
                    [index + 1, rate, met]
                    for index, (rate, met) in enumerate(capacity.probes)
                ],
            )
    else:
        arrivals = _workload_arrivals(args, payload)
        report = simulate(
            arrivals,
            cost,
            scheduler_factory(args, memory),
            slo=slo,
            trace_sink=args.stream_trace,
            keep_records=args.stream_trace is None,
            recorder=recorder,
            **resilience,
        )
        headers, rows = report.summary_rows()
        title = (
            f"Serving simulation — {len(arrivals)} x {args.model} "
            f"({args.workload} workload, {report.scheduler_name} scheduler)"
        )

    extra_tables = []
    if args.show_cache_stats:
        extra_tables.append(_cache_stats_table([cost], runner))
    code = _emit_report(
        args, title, headers, rows, report, probe_rows, extra_tables=extra_tables
    )
    if args.stream_trace is not None:
        print(f"\nStreamed {report.num_requests} request rows to {args.stream_trace}")
    def _snapshot():
        from repro.obs import serving_snapshot

        return serving_snapshot(report, cost_model=cost)

    _emit_observability(
        args, span_recorder if args.trace_out is not None else None, _snapshot
    )
    _emit_timeline(args, timeline, report)
    _emit_attribution(args, span_recorder)
    return code


def _parse_mix(spec: str) -> List[object]:
    """``--mix`` entries ("name=count", comma-separated) as backend objects.

    A name is a registered backend, or ``cambricon-<cfg>`` sugar pinning a
    Table-II configuration per device (``cambricon-s=4,flexgen-ssd=2``).
    """
    backends: List[object] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, equals, count_text = entry.partition("=")
        name = name.strip().lower()
        try:
            count = int(count_text) if equals else 1
        except ValueError:
            raise SystemExit(f"--mix: bad count in {entry!r}")
        if count < 1:
            raise SystemExit(f"--mix: count must be >= 1 in {entry!r}")
        if name in list_backends():
            backends.extend([name] * count)
            continue
        base, dash, config = name.rpartition("-")
        if dash and base == "cambricon":
            try:
                pinned = get_config(config.upper())
            except (KeyError, ValueError):
                raise SystemExit(f"--mix: unknown backend or config {name!r}")
            backends.extend(
                CambriconBackend(config=pinned) for _ in range(count)
            )
            continue
        raise SystemExit(
            f"--mix: unknown backend {name!r}; available: "
            f"{', '.join(list_backends())} (or cambricon-s/m/l)"
        )
    if not backends:
        raise SystemExit("--mix produced an empty fleet")
    return backends


def _fleet_command(args: argparse.Namespace) -> int:
    payload = InferenceRequest(
        model=args.model,
        config=args.config,
        seq_len=args.seq_len,
        gen_tokens=args.gen_tokens,
    )
    _validate_trace_flags(args)
    if args.show_probes and args.size_for_qps is None:
        raise SystemExit("--show-probes requires --size-for-qps")
    if args.size_for_qps is not None and args.num_devices is not None:
        raise SystemExit(
            "--size-for-qps searches the replica count itself; "
            "it cannot honour --num-devices (cap it with --max-replicas)"
        )
    if args.stream_trace is not None:
        if args.csv is not None:
            raise SystemExit("pass either --stream-trace or --csv, not both")
        if args.size_for_qps is not None:
            raise SystemExit(
                "--stream-trace streams one simulation's trace; it cannot "
                "follow a sizing search"
            )
    if args.parallel < 1:
        raise SystemExit("--parallel must be at least 1")
    if args.parallel != 1 and args.size_for_qps is None:
        raise SystemExit("--parallel parallelizes --size-for-qps probes")
    slo = _serving_slo(args)
    memory = _serving_memory(args)
    resilience = _resilience_kwargs(args, searching=args.size_for_qps is not None)
    runner = ExperimentRunner()
    sharding = ShardingSpec(tensor_parallel=args.tp, pipeline_parallel=args.pp)
    # Each replica owns the DRAM/flash of all its chips (tp x pp of them);
    # ``size_fleet`` re-derives the scaling itself per sharding candidate.
    device_memory = None if memory is None else memory.scaled(sharding.num_devices)

    def scheduler_factory(memory=device_memory):
        return _SCHEDULERS[args.scheduler](args, memory)

    probe_rows = None
    cost_models: List[object] = []
    recorder, span_recorder, timeline = _serving_observers(
        args, searching=args.size_for_qps is not None
    )

    if args.size_for_qps is not None:
        if slo is None:
            raise SystemExit("--size-for-qps needs an SLO (--slo-ttft/tpot/e2e)")
        if args.mix is not None:
            raise SystemExit(
                "--size-for-qps sizes a homogeneous fleet; it cannot search --mix"
            )
        if args.workload != "poisson":
            raise SystemExit(
                "--size-for-qps sizes against a Poisson arrival process; "
                f"it cannot search a {args.workload!r} workload"
            )
        cost_cache: dict = {}
        sizing = size_fleet(
            args.backend,
            payload,
            slo,
            args.size_for_qps,
            shardings=[sharding],
            scheduler_factory=scheduler_factory,
            router_factory=lambda: get_router(args.router),
            memory=memory,
            num_requests=100 if args.num_requests is None else args.num_requests,
            seed=args.seed,
            max_replicas=args.max_replicas,
            runner=runner,
            cost_cache=cost_cache,
            parallel=args.parallel,
        )
        cost_models = list(cost_cache.values())
        report = sizing.report
        headers, rows = report.summary_rows()
        won = sizing.sharding
        rows = [
            ["replicas needed", sizing.num_replicas],
            [
                "sharding (tp x pp)",
                f"{won.tensor_parallel} x {won.pipeline_parallel}",
            ],
            ["total chips", sizing.num_chips],
            ["sizing probes", len(sizing.probes)],
        ] + rows
        title = (
            f"Fleet sizing — {args.size_for_qps:g} qps of {args.model} "
            f"on {args.backend} ({args.router} router)"
        )
        if args.show_probes:
            probe_rows = (
                ["probe", "replicas", "tp", "pp", "SLO met"],
                [
                    [
                        index + 1,
                        probe.replicas,
                        probe.sharding.tensor_parallel,
                        probe.sharding.pipeline_parallel,
                        probe.met,
                    ]
                    for index, probe in enumerate(sizing.probes)
                ],
            )
    else:
        if args.mix is not None:
            backends = _parse_mix(args.mix)
        else:
            backends = [args.backend] * (
                2 if args.num_devices is None else args.num_devices
            )
        fleet = build_fleet(
            backends,
            scheduler_factory=scheduler_factory,
            sharding=sharding,
            runner=runner,
        )
        arrivals = _workload_arrivals(args, payload)
        report = simulate_fleet(
            arrivals,
            fleet,
            get_router(args.router),
            slo=slo,
            trace_sink=args.stream_trace,
            keep_records=args.stream_trace is None,
            recorder=recorder,
            **resilience,
        )
        cost_models = [device.cost for device in fleet]
        headers, rows = report.summary_rows()
        title = (
            f"Fleet simulation — {len(arrivals)} x {args.model} on "
            f"{len(fleet)} devices ({args.workload} workload, {args.router} router)"
        )

    device_headers, device_rows = report.per_device_rows()
    extra_tables = [("Per-device breakdown", device_headers, device_rows)]
    if args.show_cache_stats:
        extra_tables.append(_cache_stats_table(cost_models, runner))
    code = _emit_report(
        args,
        title,
        headers,
        rows,
        report,
        probe_rows,
        extra_tables=extra_tables,
    )
    if args.stream_trace is not None:
        print(f"\nStreamed {report.num_requests} request rows to {args.stream_trace}")
    def _snapshot():
        from repro.obs import fleet_snapshot

        return fleet_snapshot(report, cost_models=cost_models)

    _emit_observability(
        args, span_recorder if args.trace_out is not None else None, _snapshot
    )
    _emit_timeline(args, timeline, report)
    _emit_attribution(args, span_recorder)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cambricon-LLM reproduction: decode-speed and scalability models",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decode = subparsers.add_parser("decode", help="decode-speed report for one model")
    _add_model_argument(decode)
    decode.add_argument("--config", default="L", help="S, M or L (default L)")
    decode.add_argument("--seq-len", type=int, default=1000, help="cached context length")
    decode.set_defaults(handler=_decode_command)

    compare = subparsers.add_parser("compare", help="compare against the paper's baselines")
    _add_model_argument(compare)
    compare.add_argument("--seq-len", type=int, default=1000)
    compare.set_defaults(handler=_compare_command)

    sweep = subparsers.add_parser("sweep", help="chips-per-channel scalability sweep")
    _add_model_argument(sweep)
    sweep.add_argument("--config", default="S")
    sweep.add_argument("--seq-len", type=int, default=1000)
    sweep.add_argument(
        "--chips", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32],
        help="chips-per-channel values to sweep",
    )
    sweep.set_defaults(handler=_sweep_command)

    grid = subparsers.add_parser(
        "grid", help="run a backend x model x config x seq_len experiment grid"
    )
    grid.add_argument(
        "models", nargs="+", choices=list_models(), help="models to evaluate"
    )
    grid.add_argument(
        "--backends", nargs="+", default=None, metavar="NAME",
        help=f"registered backends (default: all — {', '.join(list_backends())})",
    )
    grid.add_argument(
        "--configs", nargs="+", default=["L"], metavar="CFG",
        help="hardware configuration keys for backends that accept them (default L)",
    )
    grid.add_argument("--seq-lens", type=int, nargs="+", default=[1000])
    grid.add_argument("--batch-sizes", type=int, nargs="+", default=[1])
    grid.add_argument("--gen-tokens", type=int, nargs="+", default=[1])
    grid.add_argument("--csv", default=None, metavar="PATH", help="also write CSV here")
    grid.add_argument(
        "--markdown", action="store_true", help="print a markdown table instead"
    )
    grid.add_argument("--workers", type=int, default=None, help="thread-pool width")
    grid.add_argument(
        "--show-cache-stats", action="store_true",
        help="print the shared ExperimentRunner's profile-cache counters "
             "(matches the serve/fleet flag)",
    )
    grid.set_defaults(handler=_grid_command)

    serve = subparsers.add_parser(
        "serve",
        help="simulate a multi-request serving workload with SLO metrics",
    )
    _add_serving_arguments(serve)
    serve.add_argument(
        "--find-max-qps", action="store_true",
        help="bisect for the highest Poisson rate that meets the SLO",
    )
    serve.set_defaults(handler=_serve_command)

    fleet = subparsers.add_parser(
        "fleet",
        help="simulate a multi-device fleet (routing, sharding, fleet sizing)",
    )
    _add_serving_arguments(fleet)
    fleet.add_argument(
        "--num-devices", type=int, default=None,
        help="replica count for a homogeneous fleet (default 2; "
             "incompatible with --size-for-qps, which searches the count)",
    )
    fleet.add_argument(
        "--router", choices=sorted(ROUTERS), default="jsq",
        help="routing policy (default jsq)",
    )
    fleet.add_argument(
        "--tp", type=int, default=1,
        help="tensor-parallel degree of every replica (default 1)",
    )
    fleet.add_argument(
        "--pp", type=int, default=1,
        help="pipeline-parallel degree of every replica (default 1)",
    )
    fleet.add_argument(
        "--mix", default=None, metavar="SPEC",
        help="heterogeneous fleet, e.g. 'cambricon-s=4,flexgen-ssd=2' "
             "(overrides --num-devices/--backend)",
    )
    fleet.add_argument(
        "--size-for-qps", type=float, default=None, metavar="QPS",
        help="search the smallest replica count sustaining this rate under the SLO",
    )
    fleet.add_argument(
        "--max-replicas", type=int, default=64,
        help="replica-search ceiling for --size-for-qps (default 64)",
    )
    fleet.set_defaults(handler=_fleet_command)
    return parser


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    """Payload, workload, scheduler, SLO and output flags shared by
    ``serve`` and ``fleet``."""
    _add_model_argument(parser)
    parser.add_argument(
        "--backend", default="cambricon",
        help=f"registered backend (default cambricon; {', '.join(list_backends())})",
    )
    parser.add_argument("--config", default="L", help="hardware config key (default L)")
    parser.add_argument("--seq-len", type=int, default=1000, help="prompt length")
    parser.add_argument(
        "--gen-tokens", type=int, default=16, help="tokens generated per request"
    )
    parser.add_argument(
        "--workload", choices=("poisson", "constant", "onoff", "trace"),
        default="poisson", help="arrival process (default poisson)",
    )
    parser.add_argument(
        "--qps", type=float, default=1.0,
        help="mean arrival rate (burst rate for onoff; default 1.0)",
    )
    parser.add_argument(
        "--num-requests", type=int, default=None,
        help="arrivals to simulate (default 100; trace: the whole trace)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    parser.add_argument(
        "--on-seconds", type=float, default=1.0, help="onoff: burst window length"
    )
    parser.add_argument(
        "--off-seconds", type=float, default=1.0, help="onoff: silence window length"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="trace CSV to replay (with --workload trace)",
    )
    parser.add_argument(
        "--bundled-trace", default=None, metavar="NAME",
        help="bundled trace fixture to replay with --workload trace "
             f"({', '.join(list_bundled_traces()) or 'none shipped'})",
    )
    parser.add_argument(
        "--scheduler", choices=sorted(_SCHEDULERS), default="fcfs",
        help="request scheduler (default fcfs)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="batch slots for static/continuous scheduling (default 8)",
    )
    parser.add_argument(
        "--dram-gb", type=float, default=None, metavar="GIB",
        help="model KV memory: per-chip DRAM budget in GiB (continuous "
             "scheduler only; admission blocks and cold KV spills to flash "
             "when it runs out)",
    )
    parser.add_argument(
        "--flash-gb", "--flash", type=float, default=None, metavar="GIB",
        dest="flash_gb",
        help="model KV memory: cap the per-chip flash spill area at this "
             "many GiB (default: whatever the --config flash array holds)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject seeded faults (repro.faults): comma-separated "
             "key=value pairs among seed, crash-mtbf, mttr, slow-mtbf, "
             "slow-duration, slow-factor, flaky, crash-window=DEV:START:DUR, "
             "slow-window=DEV:START:DUR[:FACTOR]; e.g. "
             "'crash-mtbf=300,mttr=20,flaky=0.01'",
    )
    parser.add_argument(
        "--retry", default=None, metavar="SPEC",
        help="client retry policy: key=value pairs among attempts, backoff, "
             "multiplier, jitter, seed, hedge-after; e.g. "
             "'attempts=3,backoff=0.5,multiplier=2'",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="SEC",
        help="per-request deadline on the simulated clock: queued work past "
             "it is shed, finished work past it counts as timed out",
    )
    parser.add_argument("--slo-ttft", type=float, default=None, help="TTFT SLO (s)")
    parser.add_argument(
        "--slo-tpot", type=float, default=None, help="time-per-output-token SLO (s)"
    )
    parser.add_argument("--slo-e2e", type=float, default=None, help="end-to-end SLO (s)")
    parser.add_argument(
        "--slo-attainment", type=float, default=0.95,
        help="fraction of requests that must meet the SLO (default 0.95)",
    )
    parser.add_argument(
        "--show-probes", action="store_true",
        help="print the probe trail of a capacity/sizing search",
    )
    parser.add_argument(
        "--show-cache-stats", action="store_true",
        help="print cost-model latency and backend-profile cache counters",
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the per-request trace as CSV",
    )
    parser.add_argument(
        "--stream-trace", default=None, metavar="PATH",
        help="stream the per-request trace to PATH as requests finish "
             "(byte-identical to --csv but with O(in-flight) memory; "
             "incompatible with --csv and with the capacity/sizing searches)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the simulation with a repro.obs SpanRecorder and write "
             "a Perfetto/Chrome trace-event JSON here (keyed on simulated "
             "time; never changes the simulation's results)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final report as a Prometheus text-format metrics "
             "snapshot (repro.obs.MetricsSnapshot exposition)",
    )
    parser.add_argument(
        "--timeline-out", default=None, metavar="PATH",
        help="fold the run into fixed-width metric windows on the simulated "
             "clock (repro.obs.TimelineCollector) and write them here as CSV "
             "(never changes the simulation's results)",
    )
    parser.add_argument(
        "--timeline-window", type=float, default=60.0, metavar="SEC",
        help="window width in simulated seconds for --timeline-out/--alerts "
             "(default 60)",
    )
    parser.add_argument(
        "--alerts", action="store_true",
        help="evaluate the default SLO burn-rate alert pack (fast + slow "
             "multiwindow rules) as timeline windows close and print the "
             "fire/resolve log; needs an SLO",
    )
    parser.add_argument(
        "--attribution", action="store_true",
        help="record the run's spans and print a critical-path attribution "
             "table (queue/prefill/decode shares, flash I/O, per-device "
             "makespan chains)",
    )
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="speculative probe threads for --find-max-qps/--size-for-qps "
             "(capped at the CPU count; the probe trail and the result are "
             "identical to the serial search)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print a markdown table instead"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
