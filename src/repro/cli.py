"""Command-line interface.

Installed as ``python -m repro``; every subcommand drives the unified
:mod:`repro.api` Backend/Request/Result layer:

* ``decode``  — decode-speed report for one model on one configuration,
* ``compare`` — Cambricon-LLM-S/M/L versus the FlexGen / MLC-LLM baselines,
* ``sweep``   — channel/chip scalability sweep for one model (Fig. 15 style),
* ``grid``    — cartesian (backend x model x config x seq_len x batch)
  experiment grid with memoized concurrent execution and CSV/markdown export.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.api import (
    CambriconBackend,
    ExperimentRunner,
    InferenceRequest,
    list_backends,
)
from repro.core import get_config
from repro.llm.models import list_models
from repro.reporting import print_table

_CAMBRICON_CONFIGS = ("S", "M", "L")
_BASELINE_BACKENDS = ("flexgen-ssd", "flexgen-dram", "mlc-llm")


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "model",
        choices=list_models(),
        help="model to evaluate (paper zoo: OPT and Llama2 families)",
    )


def _speed_cell(result) -> object:
    return "OOM" if result.out_of_memory else result.tokens_per_second


def _decode_command(args: argparse.Namespace) -> int:
    backend = CambriconBackend(config=get_config(args.config))
    result = backend.run(InferenceRequest(model=args.model, seq_len=args.seq_len))
    if result.out_of_memory:
        print(f"{args.model} does not fit on {result.backend_name}: {result.error}")
        return 1
    report = result.detail
    print_table(
        f"Decode report — {report.model_name} on {report.config_name}",
        ["metric", "value"],
        [
            ["decode speed (token/s)", report.tokens_per_second],
            ["latency per token (ms)", 1e3 * report.token_seconds],
            ["time to first token (ms)", 1e3 * result.time_to_first_token_s],
            ["flash share alpha", report.alpha],
            ["tile", report.tile],
            ["channel utilisation (%)", 100 * report.channel_utilization],
            ["external traffic per token (GB)", report.traffic.external_bytes / 1e9],
            ["energy per token (J)", result.energy_joules_per_token],
            ["bottleneck", result.bottleneck],
        ],
    )
    return 0


def _compare_command(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    rows = []
    for config in _CAMBRICON_CONFIGS:
        result = runner.run(
            "cambricon",
            InferenceRequest(model=args.model, config=config, seq_len=args.seq_len),
        )
        rows.append([result.backend_name, _speed_cell(result)])
    for backend in _BASELINE_BACKENDS:
        result = runner.run(
            backend, InferenceRequest(model=args.model, seq_len=args.seq_len)
        )
        rows.append([result.backend_name, _speed_cell(result)])
    print_table(
        f"Decode speed comparison — {args.model} at seq_len {args.seq_len} (token/s)",
        ["system", "token/s"],
        rows,
    )
    return 0


def _sweep_command(args: argparse.Namespace) -> int:
    base = get_config(args.config)
    request = InferenceRequest(model=args.model, seq_len=args.seq_len)
    rows = []
    for chips in args.chips:
        backend = CambriconBackend(
            config=base.with_flash_scale(chips_per_channel=chips), energy=False
        )
        result = backend.run(request)
        rows.append(
            [
                backend.config.flash.channels,
                chips,
                "OOM" if result.out_of_memory else result.tokens_per_second,
                (
                    100 * result.notes["channel_utilization"]
                    if result.supported
                    else "-"
                ),
            ]
        )
    print_table(
        f"Chip-count sweep — {args.model} on {base.name}",
        ["channels", "chips/channel", "token/s", "channel usage (%)"],
        rows,
    )
    return 0


def _grid_command(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(max_workers=args.workers)
    results = runner.run_grid(
        backends=args.backends or list_backends(),
        models=args.models,
        configs=args.configs,
        seq_lens=args.seq_lens,
        batch_sizes=args.batch_sizes,
        gen_tokens=args.gen_tokens,
    )
    headers, rows = results.to_rows()
    if args.markdown:
        print(results.to_markdown())
    else:
        print_table("Experiment grid", headers, rows)
    if args.csv is not None:
        results.to_csv(args.csv)
        print(f"\nWrote {len(results)} rows to {args.csv}")
    info = runner.cache_info()
    print(f"\n{len(results)} results ({info['misses']} runs, {info['hits']} cache hits)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cambricon-LLM reproduction: decode-speed and scalability models",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decode = subparsers.add_parser("decode", help="decode-speed report for one model")
    _add_model_argument(decode)
    decode.add_argument("--config", default="L", help="S, M or L (default L)")
    decode.add_argument("--seq-len", type=int, default=1000, help="cached context length")
    decode.set_defaults(handler=_decode_command)

    compare = subparsers.add_parser("compare", help="compare against the paper's baselines")
    _add_model_argument(compare)
    compare.add_argument("--seq-len", type=int, default=1000)
    compare.set_defaults(handler=_compare_command)

    sweep = subparsers.add_parser("sweep", help="chips-per-channel scalability sweep")
    _add_model_argument(sweep)
    sweep.add_argument("--config", default="S")
    sweep.add_argument("--seq-len", type=int, default=1000)
    sweep.add_argument(
        "--chips", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32],
        help="chips-per-channel values to sweep",
    )
    sweep.set_defaults(handler=_sweep_command)

    grid = subparsers.add_parser(
        "grid", help="run a backend x model x config x seq_len experiment grid"
    )
    grid.add_argument(
        "models", nargs="+", choices=list_models(), help="models to evaluate"
    )
    grid.add_argument(
        "--backends", nargs="+", default=None, metavar="NAME",
        help=f"registered backends (default: all — {', '.join(list_backends())})",
    )
    grid.add_argument(
        "--configs", nargs="+", default=["L"], metavar="CFG",
        help="hardware configuration keys for backends that accept them (default L)",
    )
    grid.add_argument("--seq-lens", type=int, nargs="+", default=[1000])
    grid.add_argument("--batch-sizes", type=int, nargs="+", default=[1])
    grid.add_argument("--gen-tokens", type=int, nargs="+", default=[1])
    grid.add_argument("--csv", default=None, metavar="PATH", help="also write CSV here")
    grid.add_argument(
        "--markdown", action="store_true", help="print a markdown table instead"
    )
    grid.add_argument("--workers", type=int, default=None, help="thread-pool width")
    grid.set_defaults(handler=_grid_command)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
