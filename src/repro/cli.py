"""Command-line interface.

Installed as ``python -m repro``; three subcommands cover the common
workflows without writing any Python:

* ``decode``  — decode-speed report for one model on one configuration,
* ``compare`` — Cambricon-LLM-S/M/L versus the FlexGen / MLC-LLM baselines,
* ``sweep``   — channel/chip scalability sweep for one model (Fig. 15 style).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.baselines import FlexGenDRAM, FlexGenSSD, MLCLLM
from repro.core import InferenceEngine, get_config
from repro.core.config import all_paper_configs
from repro.llm.models import list_models
from repro.reporting import print_table


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "model",
        choices=list_models(),
        help="model to evaluate (paper zoo: OPT and Llama2 families)",
    )


def _decode_command(args: argparse.Namespace) -> int:
    engine = InferenceEngine(get_config(args.config))
    report = engine.decode_report(args.model, seq_len=args.seq_len)
    print_table(
        f"Decode report — {report.model_name} on {report.config_name}",
        ["metric", "value"],
        [
            ["decode speed (token/s)", report.tokens_per_second],
            ["latency per token (ms)", 1e3 * report.token_seconds],
            ["flash share alpha", report.alpha],
            ["tile", report.tile],
            ["channel utilisation (%)", 100 * report.channel_utilization],
            ["external traffic per token (GB)", report.traffic.external_bytes / 1e9],
        ],
    )
    return 0


def _compare_command(args: argparse.Namespace) -> int:
    ssd, dram, mlc = FlexGenSSD(), FlexGenDRAM(), MLCLLM()
    rows = []
    for name, config in all_paper_configs().items():
        speed = InferenceEngine(config).decode_speed(args.model, seq_len=args.seq_len)
        rows.append([config.name, f"{speed:.2f}"])
    rows.append(["FlexGen-SSD", f"{ssd.decode_speed(args.model):.2f}"])
    rows.append(["FlexGen-DRAM", f"{dram.decode_speed(args.model):.2f}"])
    mlc_result = mlc.decode_result(args.model)
    rows.append(
        ["MLC-LLM", "OOM" if mlc_result.out_of_memory else f"{mlc_result.tokens_per_second:.2f}"]
    )
    print_table(
        f"Decode speed comparison — {args.model} (token/s)",
        ["system", "token/s"],
        rows,
    )
    return 0


def _sweep_command(args: argparse.Namespace) -> int:
    base = get_config(args.config)
    rows = []
    for chips in args.chips:
        config = base.with_flash_scale(chips_per_channel=chips)
        report = InferenceEngine(config).decode_report(args.model, seq_len=args.seq_len)
        rows.append(
            [
                config.flash.channels,
                chips,
                report.tokens_per_second,
                100 * report.channel_utilization,
            ]
        )
    print_table(
        f"Chip-count sweep — {args.model} on {base.name}",
        ["channels", "chips/channel", "token/s", "channel usage (%)"],
        rows,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cambricon-LLM reproduction: decode-speed and scalability models",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decode = subparsers.add_parser("decode", help="decode-speed report for one model")
    _add_model_argument(decode)
    decode.add_argument("--config", default="L", help="S, M or L (default L)")
    decode.add_argument("--seq-len", type=int, default=1000, help="cached context length")
    decode.set_defaults(handler=_decode_command)

    compare = subparsers.add_parser("compare", help="compare against the paper's baselines")
    _add_model_argument(compare)
    compare.add_argument("--seq-len", type=int, default=1000)
    compare.set_defaults(handler=_compare_command)

    sweep = subparsers.add_parser("sweep", help="chips-per-channel scalability sweep")
    _add_model_argument(sweep)
    sweep.add_argument("--config", default="S")
    sweep.add_argument("--seq-len", type=int, default=1000)
    sweep.add_argument(
        "--chips", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32],
        help="chips-per-channel values to sweep",
    )
    sweep.set_defaults(handler=_sweep_command)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
