"""Fig. 14 — ablation of the hardware-aware tiling (flash-only execution)."""

from repro.core import InferenceEngine, cambricon_llm_s
from repro.llm.models import PAPER_MODEL_ORDER
from repro.reporting import print_table


def _rows():
    hybrid = InferenceEngine(cambricon_llm_s())
    flash_only = InferenceEngine(cambricon_llm_s(), offload_to_npu=False)
    rows = []
    for model in PAPER_MODEL_ORDER:
        ours = hybrid.decode_report(model)
        ablated = flash_only.decode_report(model)
        rows.append(
            [
                model,
                ours.tokens_per_second,
                ablated.tokens_per_second,
                ours.tokens_per_second / ablated.tokens_per_second,
                100 * ours.channel_utilization,
                100 * ablated.channel_utilization,
            ]
        )
    return rows


def test_fig14_hardware_aware_tiling_ablation(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Fig. 14 — hardware-aware tiling ablation on Cambricon-LLM-S "
        "(paper: tiling is worth 1.3-1.4x; channel usage 79-91% vs ~3%)",
        ["model", "with tiling (tok/s)", "flash only (tok/s)", "speedup", "usage with (%)", "usage without (%)"],
        rows,
    )
    for row in rows:
        assert 1.1 < row[3] < 2.0
        assert row[5] < 10.0
