"""Fig. 1 — arithmetic-intensity and reduction-ratio comparison.

Regenerates (a) the arithmetic intensity of single-batch LLM decode versus
other AI workloads and hardware ceilings, and (b) the reduction-ratio gap
between the LLM GeMV and prior in-storage-computing workloads.
"""

from repro.analysis.reduction import REFERENCE_ISC_WORKLOADS, llm_gemv_reduction_entry
from repro.analysis.roofline import (
    REFERENCE_PLATFORMS,
    REFERENCE_WORKLOADS,
    llm_decode_point,
    llm_prefill_point,
)
from repro.reporting import print_table


def _figure_rows():
    decode = llm_decode_point("llama2-7b")
    prefill = llm_prefill_point("llama2-7b")
    intensity_rows = [[decode.name, decode.arithmetic_intensity, "~2 (paper)"]]
    intensity_rows.append([prefill.name, prefill.arithmetic_intensity, ">100"])
    for workload in REFERENCE_WORKLOADS:
        intensity_rows.append([workload.name, workload.arithmetic_intensity, "30-100x above decode"])
    for platform in REFERENCE_PLATFORMS:
        intensity_rows.append(
            [f"{platform.name} (machine balance)", platform.machine_balance, ">100x above decode"]
        )

    reduction_rows = [
        [entry.name, entry.reduction_ratio, entry.source_system]
        for entry in (llm_gemv_reduction_entry("llama2-7b"),) + REFERENCE_ISC_WORKLOADS
    ]
    return intensity_rows, reduction_rows


def test_fig01_arithmetic_intensity_and_reduction_ratio(benchmark, once):
    intensity_rows, reduction_rows = once(benchmark, _figure_rows)
    print_table(
        "Fig. 1(a) — arithmetic intensity (ops/byte)",
        ["workload / platform", "ops per byte", "paper position"],
        intensity_rows,
    )
    print_table(
        "Fig. 1(b) — reduction ratio (input / output size)",
        ["workload", "reduction ratio", "source system"],
        reduction_rows,
    )
    decode_intensity = intensity_rows[0][1]
    assert 1.5 <= decode_intensity <= 2.5
    assert reduction_rows[0][1] > 100 * max(r[1] for r in reduction_rows[1:])
