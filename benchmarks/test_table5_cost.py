"""Table V — memory cost of Cambricon-LLM vs a traditional DRAM-only design."""

from repro.cost.bom import BillOfMaterials, chiplet_packaging_bound
from repro.reporting import print_table


def _rows():
    bom = BillOfMaterials(weight_gb=80, kv_cache_gb=2)
    cambricon = bom.cambricon_llm()
    traditional = bom.traditional()
    rows = [
        [system.name, system.dram_gb, system.dram_cost, system.flash_gb, system.flash_cost, system.total_cost]
        for system in (cambricon, traditional)
    ]
    rows.append(["Savings", "", "", "", "", bom.savings()])
    return rows


def test_table5_cost(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Table V — memory bill of materials for 70B INT8 inference "
        "(paper: $43.67 vs $194.68; chiplet packaging bounded below $100)",
        ["system", "DRAM (GB)", "DRAM ($)", "Flash (GB)", "Flash ($)", "Total ($)"],
        rows,
    )
    assert rows[0][5] < 0.3 * rows[1][5]
    assert chiplet_packaging_bound(600.0) <= 100.0
