"""Fig. 16 — per-token data transfer size and energy vs FlexGen-SSD."""

from repro.core import InferenceEngine, cambricon_llm_s
from repro.energy import CambriconEnergyModel, FlexGenSSDEnergyModel
from repro.llm.models import PAPER_MODEL_ORDER
from repro.reporting import print_table

PAPER_TRAFFIC_GB = {
    "opt-6.7b": (1.9, 20.2), "opt-13b": (4.1, 39.2), "opt-30b": (9.3, 90.3),
    "opt-66b": (20.5, 198.6), "llama2-7b": (2.0, 21.1), "llama2-13b": (4.1, 39.2),
    "llama2-70b": (24.2, 210.7),
}


def _rows():
    cambricon = CambriconEnergyModel(InferenceEngine(cambricon_llm_s()))
    flexgen = FlexGenSSDEnergyModel()
    rows = []
    for model in PAPER_MODEL_ORDER:
        ours = cambricon.report(model)
        theirs = flexgen.report(model)
        paper_cam, paper_flex = PAPER_TRAFFIC_GB[model]
        rows.append(
            [
                model,
                ours.external_transfer_bytes / 1e9, paper_cam,
                theirs.external_transfer_bytes / 1e9, paper_flex,
                ours.energy_joules,
                theirs.energy_joules,
            ]
        )
    return rows


def test_fig16_traffic_and_energy(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Fig. 16 — per-token transfer size (GB) and energy (J), Cam-LLM-S vs FlexGen-SSD",
        ["model", "Cam GB", "paper", "FlexGen GB", "paper", "Cam J", "FlexGen J"],
        rows,
    )
    for row in rows:
        traffic_ratio = row[3] / row[1]
        assert 6 <= traffic_ratio <= 16       # paper reports 9.7x-11.6x
        assert row[5] < row[6]                # and lower transfer energy
