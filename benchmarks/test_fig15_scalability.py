"""Fig. 15 — scalability with chip count per channel and with channel count."""

from repro.core import InferenceEngine, cambricon_llm_s
from repro.llm.models import OPT_MODELS
from repro.reporting import print_table

CHIP_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)
CHANNEL_SWEEP = (1, 2, 4, 8, 16, 32, 64)
SWEEP_MODELS = ("opt-6.7b", "opt-13b", "opt-30b")


def _chip_rows():
    rows = []
    for chips in CHIP_SWEEP:
        config = cambricon_llm_s().with_flash_scale(channels=8, chips_per_channel=chips)
        engine = InferenceEngine(config)
        reports = [engine.decode_report(model) for model in SWEEP_MODELS]
        rows.append(
            [chips]
            + [report.tokens_per_second for report in reports]
            + [100 * reports[0].channel_utilization]
        )
    return rows


def _channel_rows():
    rows = []
    for channels in CHANNEL_SWEEP:
        config = cambricon_llm_s().with_flash_scale(channels=channels, chips_per_channel=4)
        engine = InferenceEngine(config)
        reports = [engine.decode_report(model) for model in SWEEP_MODELS]
        rows.append(
            [channels]
            + [report.tokens_per_second for report in reports]
            + [100 * reports[0].channel_utilization]
        )
    return rows


def test_fig15ac_chip_count_scaling(benchmark, once):
    rows = once(benchmark, _chip_rows)
    print_table(
        "Fig. 15(a)/(c) — decode speed and channel usage vs chips per channel (8 channels)",
        ["chips/channel"] + list(SWEEP_MODELS) + ["channel usage (%)"],
        rows,
    )
    speeds = [row[1] for row in rows]
    assert speeds[3] > 2 * speeds[0]                       # early scaling is strong
    assert speeds[-1] / speeds[-2] < speeds[1] / speeds[0]  # and saturates (Fig. 15a)
    assert rows[-1][-1] < rows[0][-1]                       # usage drops (Fig. 15c)


def test_fig15bd_channel_count_scaling(benchmark, once):
    rows = once(benchmark, _channel_rows)
    print_table(
        "Fig. 15(b)/(d) — decode speed and channel usage vs channel count (4 chips/channel)",
        ["channels"] + list(SWEEP_MODELS) + ["channel usage (%)"],
        rows,
    )
    speeds = [row[1] for row in rows]
    assert all(later > earlier for earlier, later in zip(speeds, speeds[1:]))
    assert rows[-1][-1] <= rows[0][-1] + 1e-9
