"""Fig. 10 — accuracy with and without the on-die ECC versus raw error rate."""

from repro.accuracy import ErrorInjectionStudy, paper_tasks
from repro.reporting import print_table

ERROR_RATES = (1e-5, 1e-4, 2e-4, 8e-4, 2e-3)


def _rows():
    rows = []
    for name, task in paper_tasks().items():
        study = ErrorInjectionStudy(task, trials=2)
        for result in study.sweep(ERROR_RATES):
            rows.append(
                [
                    name,
                    f"{result.error_rate:.0e}",
                    100 * result.baseline_accuracy,
                    100 * result.accuracy_without_ecc,
                    100 * result.accuracy_with_ecc,
                    100 * result.retention_with_ecc,
                ]
            )
    return rows


def test_fig10_error_correction_effectiveness(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Fig. 10 — accuracy vs flash error rate, without / with the on-die ECC",
        ["task", "error rate", "clean (%)", "no ECC (%)", "with ECC (%)", "ECC retention (%)"],
        rows,
    )
    # Paper: at 2e-4 the ECC retains 92-95 % of the original accuracy while
    # the unprotected model has already degraded substantially.
    at_2e4 = [r for r in rows if r[1] == "2e-04"]
    for row in at_2e4:
        assert row[5] >= 88.0
        assert row[4] >= row[3]
