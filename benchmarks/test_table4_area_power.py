"""Table IV — area and power overhead of the on-die Compute Core."""

from repro.cost.area import ComputeCoreAreaModel
from repro.reporting import print_table


def _rows():
    model = ComputeCoreAreaModel()
    rows = [
        [entry.name, entry.area_um2, entry.power_uw]
        for entry in model.components().values()
    ]
    rows.append(["Total Compute Core", model.total_area_um2(), model.total_power_uw()])
    rows.append(
        ["Overhead vs flash die", f"{100 * model.die_area_overhead():.1f}%", f"{100 * model.die_power_overhead():.1f}%"]
    )
    return rows


def test_table4_area_power(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Table IV — Compute Core area and power (paper: 1.2% area, 4.5% power overhead)",
        ["component", "area (um^2)", "power (uW)"],
        rows,
    )
    assert float(rows[-2][1]) < 100000
