"""Fig. 12 — ablation of the read-request slicing mechanism (Cam-LLM-S)."""

from repro.core import InferenceEngine, cambricon_llm_s
from repro.flash.slicing import SlicePolicy
from repro.llm.models import PAPER_MODEL_ORDER
from repro.reporting import print_table

PAPER_SPEEDUP_RANGE = (1.6, 1.8)     # paper: slicing is worth 1.6x-1.8x
PAPER_UTIL_WITH = 0.79               # paper: 79-91 % channel usage with slicing
PAPER_UTIL_WITHOUT = 0.50            # paper: ~48-50 % without


def _rows():
    sliced_engine = InferenceEngine(cambricon_llm_s())
    unsliced_engine = InferenceEngine(
        cambricon_llm_s().with_slice_policy(SlicePolicy.UNSLICED)
    )
    rows = []
    for model in PAPER_MODEL_ORDER:
        sliced = sliced_engine.decode_report(model)
        unsliced = unsliced_engine.decode_report(model)
        rows.append(
            [
                model,
                sliced.tokens_per_second,
                unsliced.tokens_per_second,
                sliced.tokens_per_second / unsliced.tokens_per_second,
                100 * sliced.channel_utilization,
                100 * unsliced.channel_utilization,
            ]
        )
    return rows


def test_fig12_read_slice_ablation(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Fig. 12 — read-request slicing ablation on Cambricon-LLM-S "
        "(paper: 1.6-1.8x speedup, channel usage 79-91% vs ~50%)",
        ["model", "with slice (tok/s)", "no slice (tok/s)", "speedup", "usage with (%)", "usage without (%)"],
        rows,
    )
    for row in rows:
        assert row[3] > 1.25                # slicing clearly helps
        assert row[4] > row[5] + 20         # and reclaims channel bandwidth
