"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes the
same rows/series the paper reports, prints them next to the paper's numbers
(where the paper gives them), and times the underlying computation with
pytest-benchmark.  Absolute agreement is not expected — the substrate is an
analytical/event model rather than SSDsim + RTL — but orderings, rough
factors and crossovers are asserted in the regular test suite.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function):
    """Benchmark ``function`` with a single round (engine sweeps are already
    aggregates; statistical repetition adds nothing but wall-clock time)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
