"""Fig. 9 — end-to-end decode speed versus FlexGen and MLC-LLM.

Regenerates both panels: (a) Cambricon-LLM-S/M/L versus FlexGen-SSD and
FlexGen-DRAM on the OPT family, and (b) versus MLC-LLM on the Llama2 family.
"""

from repro.baselines import FlexGenDRAM, FlexGenSSD, MLCLLM
from repro.core import InferenceEngine, cambricon_llm_l, cambricon_llm_m, cambricon_llm_s
from repro.llm.models import LLAMA2_MODELS, OPT_MODELS
from repro.reporting import print_table

PAPER_FIG9A = {
    "opt-6.7b": {"S": 3.6, "M": 11.0, "L": 36.3, "Flexgen-ssd": 0.8, "Flexgen-DRAM": 3.5},
    "opt-13b": {"S": 1.9, "M": 4.7, "L": 14.2, "Flexgen-ssd": 0.4, "Flexgen-DRAM": 2.0},
    "opt-30b": {"S": 0.8, "M": 2.5, "L": 7.6, "Flexgen-ssd": 0.2, "Flexgen-DRAM": 0.8},
    "opt-66b": {"S": 0.4, "M": 1.2, "L": 2.6, "Flexgen-ssd": 0.1, "Flexgen-DRAM": 0.4},
}

PAPER_FIG9B = {
    "llama2-7b": {"S": 3.5, "M": 10.4, "L": 34.0, "MLC-LLM": 7.5},
    "llama2-13b": {"S": 1.9, "M": 4.7, "L": 14.0, "MLC-LLM": 0.0},
    "llama2-70b": {"S": 0.3, "M": 1.0, "L": 3.4, "MLC-LLM": 0.0},
}


def _engines():
    return {
        "S": InferenceEngine(cambricon_llm_s()),
        "M": InferenceEngine(cambricon_llm_m()),
        "L": InferenceEngine(cambricon_llm_l()),
    }


def _fig9a_rows():
    engines = _engines()
    ssd, dram = FlexGenSSD(), FlexGenDRAM()
    rows = []
    for model in OPT_MODELS:
        paper = PAPER_FIG9A[model]
        rows.append(
            [
                model,
                engines["S"].decode_speed(model), paper["S"],
                engines["M"].decode_speed(model), paper["M"],
                engines["L"].decode_speed(model), paper["L"],
                ssd.decode_speed(model), paper["Flexgen-ssd"],
                dram.decode_speed(model), paper["Flexgen-DRAM"],
            ]
        )
    return rows


def _fig9b_rows():
    engines = _engines()
    mlc = MLCLLM()
    rows = []
    for model in LLAMA2_MODELS:
        paper = PAPER_FIG9B[model]
        result = mlc.decode_result(model)
        mlc_speed = "OOM" if result.out_of_memory else result.tokens_per_second
        rows.append(
            [
                model,
                engines["S"].decode_speed(model), paper["S"],
                engines["M"].decode_speed(model), paper["M"],
                engines["L"].decode_speed(model), paper["L"],
                mlc_speed, paper["MLC-LLM"] or "OOM",
            ]
        )
    return rows


def test_fig09a_decode_speed_vs_flexgen(benchmark, once):
    rows = once(benchmark, _fig9a_rows)
    print_table(
        "Fig. 9(a) — decode speed (token/s), ours vs paper",
        [
            "model",
            "Cam-S", "paper", "Cam-M", "paper", "Cam-L", "paper",
            "FlexGen-SSD", "paper", "FlexGen-DRAM", "paper",
        ],
        rows,
    )
    for row in rows:
        cam_l, flexgen_ssd = row[5], row[7]
        assert cam_l > 15 * flexgen_ssd  # the paper's 22x-45x claim, loosely


def test_fig09b_decode_speed_vs_mlc_llm(benchmark, once):
    rows = once(benchmark, _fig9b_rows)
    print_table(
        "Fig. 9(b) — decode speed (token/s), ours vs paper",
        ["model", "Cam-S", "paper", "Cam-M", "paper", "Cam-L", "paper", "MLC-LLM", "paper"],
        rows,
    )
    assert rows[2][7] == "OOM"   # llama2-70b does not run on the phone
    assert rows[2][5] > 2.5      # but Cambricon-LLM-L decodes it in real time
