"""Tracked perf benchmarks for the serving / fleet / capacity hot paths.

Unlike the figure suite (which checks the *model's numbers*), this suite
tracks how fast the simulators themselves run, so every PR has a perf
trajectory to answer to.  Each scenario times the coalesced event loop
(the default) against the step-by-step reference (``max_steps=1``),
verifies the two produce byte-identical per-request trace CSVs, and
records wall-clock seconds plus events processed into ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/perf/perf_serving.py --output BENCH_serving.json

Wall-clock numbers vary with the host; the events-processed counters and
the byte-identical flags are deterministic.  ``--check`` additionally
enforces the acceptance bars — a >= 10x event reduction (plus a 3x
wall-clock floor) on the 5k x 256-token continuous-batching scenario,
single-digit seconds and a streaming-RSS win on the million-request
scenarios, real spill traffic and a sub-15s wall clock on the KV-spill
scenario — and that every scenario stayed byte-identical; used by the
non-blocking CI perf job.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import subprocess
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.api import ExperimentRunner, InferenceRequest  # noqa: E402
from repro.fleet import JoinShortestQueueRouter, build_fleet, simulate_fleet  # noqa: E402
from repro.memory import MemorySpec  # noqa: E402
from repro.obs import PhaseProfiler, SpanRecorder, TimelineCollector  # noqa: E402
from repro.units import MiB  # noqa: E402
from repro.serving import (  # noqa: E402
    BackendCostModel,
    ContinuousBatchScheduler,
    DigestSink,
    PoissonWorkload,
    SLOSpec,
    WorkloadGenerator,
    find_max_qps,
    simulate,
)

BACKEND = "cambricon"
MAX_BATCH = 8

#: Shapes of the million-request scenarios (shared with the --rss-probe
#: subprocess, so both sides of the RSS comparison run the same workload).
STREAM_1M_REQUESTS = 1_000_000
STREAM_1M_GEN_TOKENS = 16


class DiurnalPoisson(WorkloadGenerator):
    """Poisson arrivals whose rate follows a compressed day curve.

    The instantaneous rate is ``base_qps * (1 + swing * sin(2*pi*t/period))``
    held piecewise-constant between arrivals — a deterministic, seeded
    stand-in for a diurnal production trace at any request count.
    """

    def __init__(self, base_qps, payload, *, period_s=600.0, swing=0.6, seed=0):
        super().__init__(payload, seed=seed)
        self.base_qps = base_qps
        self.period_s = period_s
        self.swing = swing

    def _arrival_times(self, num_requests, rng):
        times, now = [], 0.0
        scale = 2.0 * math.pi / self.period_s
        for _ in range(num_requests):
            rate = self.base_qps * (1.0 + self.swing * math.sin(scale * now))
            now += rng.expovariate(rate)
            times.append(now)
        return times


def _timed(fn):
    """Wall clock with the cyclic GC paused, as ``timeit`` does: a
    million-request run keeps enough containers live that full
    collections otherwise bill ~5% of noise onto whichever run they
    happen to interrupt."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        value = fn()
        return time.perf_counter() - start, value
    finally:
        if was_enabled:
            gc.enable()


def _timed_best(fn, trials=3):
    """Best-of-N wall clock (timeit's convention: the minimum is the
    run's true cost, everything above it is scheduler/cache noise —
    which on a busy CI host easily exceeds the bars' margins)."""
    seconds, value = _timed(fn)
    for _ in range(trials - 1):
        retry, _ = _timed(fn)
        seconds = min(seconds, retry)
    return seconds, value


def _overload_arrivals(payload, num_requests, *, rate_scale=1.5, seed=0):
    """A Poisson stream slightly above the batched service rate, so the
    device stays saturated and decode dominates (the paper's heavy-traffic
    regime, and the worst case for a per-step event loop)."""
    solo = BackendCostModel(BACKEND).total_seconds(payload)
    rate = rate_scale * MAX_BATCH / solo
    return PoissonWorkload(rate, payload, seed=seed).generate(num_requests)


def bench_serving_continuous(num_requests=5000, gen_tokens=256):
    """The tentpole scenario: 5k requests x 256-token generations under
    continuous batching, coalesced vs. step-by-step."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests)
    # Warm the backend-profile cache so wall-clock measures the event
    # loop, not the (memoized) analytical backend evaluations.
    simulate(arrivals[:50], BACKEND, ContinuousBatchScheduler(max_batch=MAX_BATCH))

    baseline_s, baseline = _timed(
        lambda: simulate(
            arrivals,
            BACKEND,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            max_steps=1,
        )
    )
    coalesced_s, coalesced = _timed(
        lambda: simulate(
            arrivals, BACKEND, ContinuousBatchScheduler(max_batch=MAX_BATCH)
        )
    )
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "seconds": coalesced_s,
        "events": coalesced.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / coalesced_s,
        "events_ratio": baseline.num_events / coalesced.num_events,
        "byte_identical": baseline.to_csv() == coalesced.to_csv(),
    }


def bench_fleet_jsq(num_requests=2000, gen_tokens=128, num_devices=4):
    """Fleet loop: 4 continuous-batching replicas behind JSQ routing."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(
        payload, num_requests, rate_scale=1.5 * num_devices, seed=1
    )

    def run(max_steps):
        fleet = build_fleet(
            [BACKEND] * num_devices,
            scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=MAX_BATCH),
        )
        return simulate_fleet(
            arrivals, fleet, JoinShortestQueueRouter(), max_steps=max_steps
        )

    run(None)  # warm the profile caches
    baseline_s, baseline = _timed(lambda: run(1))
    coalesced_s, coalesced = _timed(lambda: run(None))
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "num_devices": num_devices,
        "seconds": coalesced_s,
        "events": coalesced.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / coalesced_s,
        "events_ratio": baseline.num_events / coalesced.num_events,
        "byte_identical": baseline.to_csv() == coalesced.to_csv(),
    }


def bench_capacity_search(num_requests=400, gen_tokens=64):
    """Capacity search: early-exit on hopeless probes vs. full simulation.

    Half of every bisection is failing probes; ``fail_fast`` aborts them
    once attainment is mathematically decided.  The found rate must not
    change.
    """
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    slo = SLOSpec(ttft_s=20.0, e2e_s=120.0)

    def run(fail_fast):
        return find_max_qps(
            BACKEND,
            payload,
            slo,
            scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=MAX_BATCH),
            num_requests=num_requests,
            fail_fast=fail_fast,
        )

    run(True)  # warm the profile caches
    baseline_s, baseline = _timed(lambda: run(False))
    fast_s, fast = _timed(lambda: run(True))

    # Per-probe cost: replay every *failing* rate both ways and count the
    # events the early exit saved (deterministic, host-independent).
    cost = BackendCostModel(BACKEND)
    full_events = aborted_events = 0
    for rate, met in fast.probes:
        if met:
            continue
        arrivals = PoissonWorkload(rate, payload, seed=0).generate(num_requests)
        for fail_fast, bucket in ((False, "full"), (True, "aborted")):
            report = simulate(
                arrivals,
                cost,
                ContinuousBatchScheduler(max_batch=MAX_BATCH),
                slo=slo,
                fail_fast=fail_fast,
            )
            if bucket == "full":
                full_events += report.num_events
            else:
                aborted_events += report.num_events
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "seconds": fast_s,
        "uncoalesced_seconds": baseline_s,
        "speedup": baseline_s / fast_s,
        "probes": len(fast.probes),
        "max_qps": fast.max_qps,
        "failing_probe_events": aborted_events,
        "failing_probe_events_full": full_events,
        "events_ratio": full_events / aborted_events if aborted_events else 1.0,
        "byte_identical": fast.max_qps == baseline.max_qps
        and fast.probes == baseline.probes,
    }


def bench_serving_kv_spill_100k(num_requests=100_000, gen_tokens=8):
    """The memory-model hot path at scale: 100k requests against DRAM
    sized to 7.5 prompts, so every 8-deep batch spills KV to flash and
    decodes through the read-through regime (strictly single-step by
    design — the interesting numbers are wall clock staying flat and the
    coalesced/step-by-step traces staying byte-identical, not a speedup)."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests, seed=4)
    spec = MemorySpec(dram_bytes=1920 * MiB)
    cost = BackendCostModel(BACKEND)

    def run(max_steps=None):
        return simulate(
            arrivals,
            cost,
            ContinuousBatchScheduler(max_batch=MAX_BATCH, memory=spec),
            max_steps=max_steps,
        )

    simulate(  # warm the profile cache
        arrivals[:50], cost, ContinuousBatchScheduler(max_batch=MAX_BATCH, memory=spec)
    )
    coalesced_s, coalesced = _timed_best(lambda: run())
    baseline_s, baseline = _timed(lambda: run(max_steps=1))
    memory = coalesced.memory
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "dram_bytes": spec.dram_bytes,
        "seconds": coalesced_s,
        "events": coalesced.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / coalesced_s,
        "events_ratio": baseline.num_events / coalesced.num_events,
        "spill_events": memory.spill_events,
        "spill_bytes": memory.spill_bytes,
        "flash_pages_written": memory.flash_pages_written,
        "flash_pages_read": memory.flash_pages_read,
        "gc_erases": memory.erases,
        "byte_identical": baseline.to_csv() == coalesced.to_csv()
        and baseline.memory == coalesced.memory,
    }


def _serving_1m_workload():
    payload = InferenceRequest(
        model="llama2-7b", seq_len=512, gen_tokens=STREAM_1M_GEN_TOKENS
    )
    solo = BackendCostModel(BACKEND).total_seconds(payload)
    base = 0.9 * MAX_BATCH / solo
    return DiurnalPoisson(base, payload, seed=2), payload


def bench_serving_stream_1m(num_requests=STREAM_1M_REQUESTS):
    """Streaming tentpole, single device: one million requests through the
    heap-driven loop with ``keep_records=False``, trace digested on the
    fly.  Byte identity vs. the step-by-step reference is checked on the
    streamed digests (O(1) memory on both sides), and peak RSS is probed
    in subprocesses (``ru_maxrss`` is process-monotonic) for the streaming
    vs. record-keeping paths."""
    workload, payload = _serving_1m_workload()
    runner = ExperimentRunner()
    cost = BackendCostModel(BACKEND, runner=runner)

    def run(max_steps=None, sink=None):
        return simulate(
            workload.stream(num_requests),
            cost,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            max_steps=max_steps,
            trace_sink=sink,
            keep_records=False,
        )

    simulate(  # warm the shared profile cache
        workload.generate(50), cost, ContinuousBatchScheduler(max_batch=MAX_BATCH)
    )
    seconds, report = _timed_best(lambda: run())
    digest = DigestSink()
    run(sink=digest)
    reference = DigestSink()
    baseline_s, _ = _timed(lambda: run(max_steps=1, sink=reference))
    rss = {
        mode: _peak_rss_probe(mode) for mode in ("streaming", "inmemory")
    }
    return {
        "num_requests": num_requests,
        "gen_tokens": STREAM_1M_GEN_TOKENS,
        "seconds": seconds,
        "events": report.num_events,
        "uncoalesced_seconds": baseline_s,
        "speedup": baseline_s / seconds,
        "events_ratio": 1.0,
        "trace_bytes": digest.bytes_written,
        "peak_rss_streaming_kb": rss["streaming"],
        "peak_rss_inmemory_kb": rss["inmemory"],
        "byte_identical": digest.hexdigest() == reference.hexdigest(),
    }


def bench_fleet_stream_1m(num_requests=STREAM_1M_REQUESTS, num_devices=100):
    """The tentpole acceptance scenario: one million diurnal-rate requests
    across a 100-device JSQ fleet in single-digit seconds, byte-identical
    (streamed digests) to the step-by-step reference."""
    payload = InferenceRequest(
        model="llama2-7b", seq_len=512, gen_tokens=STREAM_1M_GEN_TOKENS
    )
    runner = ExperimentRunner()
    solo = BackendCostModel(BACKEND, runner=runner).total_seconds(payload)
    base = 0.9 * num_devices * MAX_BATCH / solo
    workload = DiurnalPoisson(base, payload, seed=3)

    def run(max_steps=None, sink=None):
        fleet = build_fleet(
            [BACKEND] * num_devices,
            scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=MAX_BATCH),
            runner=runner,
        )
        return simulate_fleet(
            workload.stream(num_requests),
            fleet,
            JoinShortestQueueRouter(),
            max_steps=max_steps,
            trace_sink=sink,
            keep_records=False,
        )

    simulate(  # warm the shared profile cache
        workload.generate(50),
        BackendCostModel(BACKEND, runner=runner),
        ContinuousBatchScheduler(max_batch=MAX_BATCH),
    )
    seconds, report = _timed_best(lambda: run())
    digest = DigestSink()
    run(sink=digest)
    reference = DigestSink()
    baseline_s, _ = _timed(lambda: run(max_steps=1, sink=reference))
    return {
        "num_requests": num_requests,
        "gen_tokens": STREAM_1M_GEN_TOKENS,
        "num_devices": num_devices,
        "seconds": seconds,
        "events": report.num_events,
        "uncoalesced_seconds": baseline_s,
        "speedup": baseline_s / seconds,
        "events_ratio": 1.0,
        "trace_bytes": digest.bytes_written,
        "byte_identical": digest.hexdigest() == reference.hexdigest(),
    }


def _peak_rss_probe(mode):
    """Peak RSS (KB) of one 1M-request serving run, measured in a child
    process — ``ru_maxrss`` never decreases within a process, so the two
    modes must not share one."""
    result = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--rss-probe", mode],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(result.stdout.strip().splitlines()[-1])


def _rss_probe_main(mode):
    """Child side of :func:`_peak_rss_probe`."""
    import resource

    workload, payload = _serving_1m_workload()
    scheduler = ContinuousBatchScheduler(max_batch=MAX_BATCH)
    if mode == "streaming":
        simulate(
            workload.stream(STREAM_1M_REQUESTS),
            BACKEND,
            scheduler,
            trace_sink=DigestSink(),
            keep_records=False,
        )
    elif mode == "inmemory":
        simulate(workload.generate(STREAM_1M_REQUESTS), BACKEND, scheduler)
    else:
        raise SystemExit(f"unknown --rss-probe mode {mode!r}")
    print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return 0


def bench_fault_overhead(num_requests=5000, gen_tokens=64):
    """The resilience contract, priced: the plain loop versus the fault
    engine with a benign spec (nothing fires inside the makespan — the
    delegation itself is the cost, and the trace must stay byte-identical
    to the plain run), versus real chaos (a mid-run crash plus flaky
    verdicts and client retries, where coalesced must stay byte-identical
    to the step-by-step reference).  ``--check`` bounds the benign
    overhead and requires both identities."""
    from repro.faults import FaultSpec, RetryPolicy

    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests, seed=6)
    cost = BackendCostModel(BACKEND)
    benign = FaultSpec(crash_windows=((0, 1e12, 1.0),))
    chaos = FaultSpec(
        crash_windows=((0, 120.0, 30.0),), flaky_prob=0.01, seed=7
    )
    retry = RetryPolicy(max_attempts=3, backoff_s=0.5)

    def run(faults=None, retry=None, max_steps=None):
        return simulate(
            arrivals,
            cost,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            faults=faults,
            retry=retry,
            max_steps=max_steps,
        )

    run()  # warm the profile cache
    bare_s, bare = _timed_best(lambda: run())
    benign_s, benign_report = _timed_best(lambda: run(faults=benign))
    chaos_s, chaos_report = _timed_best(lambda: run(faults=chaos, retry=retry))
    baseline_s, baseline = _timed(
        lambda: run(faults=chaos, retry=retry, max_steps=1)
    )
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "bare_seconds": bare_s,
        "benign_seconds": benign_s,
        "fault_overhead": benign_s / bare_s,
        "seconds": chaos_s,
        "events": chaos_report.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / chaos_s,
        "events_ratio": baseline.num_events / chaos_report.num_events,
        "crashes": chaos_report.faults.crashes,
        "requeued": chaos_report.faults.requeued,
        "retries": chaos_report.faults.retries,
        "byte_identical": benign_report.to_csv() == bare.to_csv()
        and baseline.to_csv() == chaos_report.to_csv()
        and baseline.faults == chaos_report.faults,
    }


def bench_obs_overhead(num_requests=5000, gen_tokens=64):
    """The observability contract, priced: the continuous-batching loop
    bare (``recorder=None`` — the path every other scenario, including
    ``serving_stream_1M`` and its bars, runs on), with a ``SpanRecorder``
    attached, and with a ``PhaseProfiler`` timing the loop's own phases.
    Byte identity across all three is part of ``--check``; the recorded/
    profiled wall clocks document what opting in costs."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests, seed=5)
    cost = BackendCostModel(BACKEND)

    def run(recorder=None, profiler=None):
        return simulate(
            arrivals,
            cost,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            recorder=recorder,
            profiler=profiler,
        )

    run()  # warm the profile cache
    bare_s, bare = _timed_best(lambda: run())
    # Fresh recorder per trial: a shared one would accumulate events.
    recorded_s, _ = _timed_best(lambda: run(recorder=SpanRecorder()))
    recorder = SpanRecorder()
    recorded = run(recorder=recorder)
    profiler = PhaseProfiler()
    profiled_s, profiled = _timed(lambda: run(profiler=profiler))
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "seconds": bare_s,
        "recorded_seconds": recorded_s,
        "recorder_overhead": recorded_s / bare_s,
        "events_recorded": len(recorder.events),
        "profiled_seconds": profiled_s,
        "phases": profiler.summary(),
        "byte_identical": bare.to_csv() == recorded.to_csv() == profiled.to_csv(),
    }


def bench_timeline_overhead(num_requests=5000, gen_tokens=64, window_s=60.0):
    """The windowed-telemetry path, priced the same way: the loop bare
    versus with a ``TimelineCollector`` folding every emission into
    fixed windows (including the finalize-time queue-depth sweep).
    Byte identity is part of ``--check``; the fold's wall clock and the
    window count document what the timeline costs."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests, seed=5)
    cost = BackendCostModel(BACKEND)
    slo = SLOSpec(ttft_s=10.0, e2e_s=60.0)

    def run(recorder=None):
        return simulate(
            arrivals,
            cost,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            slo=slo,
            recorder=recorder,
        )

    run()  # warm the profile cache
    bare_s, bare = _timed_best(lambda: run())
    # Fresh collector per trial: finalized windows reject new emissions.
    observed_s, _ = _timed_best(
        lambda: run(recorder=TimelineCollector(window_s=window_s, slo=slo))
    )
    collector = TimelineCollector(window_s=window_s, slo=slo)
    observed = run(recorder=collector)
    rows = collector.to_rows()
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "window_s": window_s,
        "seconds": bare_s,
        "observed_seconds": observed_s,
        "timeline_overhead": observed_s / bare_s,
        "windows": len(rows),
        "completions_folded": sum(row["completions"] for row in rows),
        "byte_identical": (
            bare.to_csv() == observed.to_csv()
            and sum(row["completions"] for row in rows) == observed.num_completed
        ),
    }


SCENARIOS = {
    "serving_continuous_5k_256": bench_serving_continuous,
    "fleet_jsq_4dev_2k_128": bench_fleet_jsq,
    "capacity_search_fail_fast": bench_capacity_search,
    "serving_kv_spill_100k": bench_serving_kv_spill_100k,
    "serving_stream_1M": bench_serving_stream_1m,
    "fleet_100dev_1M": bench_fleet_stream_1m,
    "fault_overhead_5k_64": bench_fault_overhead,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_serving.json", help="where to write the JSON record"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance bars hold (tentpole event "
        "reduction, single-digit-seconds 1M scenarios, streaming RSS) "
        "and all outputs match",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="committed BENCH_serving.json to compare against; fail on a "
        ">30%% wall-clock regression in any shared scenario",
    )
    parser.add_argument(
        "--rss-probe",
        default=None,
        choices=("streaming", "inmemory"),
        help=argparse.SUPPRESS,  # internal: child side of the RSS probes
    )
    args = parser.parse_args(argv)
    if args.rss_probe is not None:
        return _rss_probe_main(args.rss_probe)

    results = {}
    for name, bench in SCENARIOS.items():
        print(f"[{name}] running ...", flush=True)
        results[name] = bench()
        row = results[name]
        print(
            f"[{name}] {row['uncoalesced_seconds']:.2f}s -> {row['seconds']:.2f}s "
            f"({row['speedup']:.1f}x), identical={row['byte_identical']}"
        )

    print("[obs] running ...", flush=True)
    obs = bench_obs_overhead()
    print(
        f"[obs] bare {obs['seconds']:.2f}s, recorded {obs['recorded_seconds']:.2f}s "
        f"({obs['recorder_overhead']:.2f}x, {obs['events_recorded']} events), "
        f"identical={obs['byte_identical']}"
    )

    print("[obs.timeline] running ...", flush=True)
    timeline = bench_timeline_overhead()
    print(
        f"[obs.timeline] bare {timeline['seconds']:.2f}s, observed "
        f"{timeline['observed_seconds']:.2f}s "
        f"({timeline['timeline_overhead']:.2f}x, {timeline['windows']} windows), "
        f"identical={timeline['byte_identical']}"
    )
    obs["timeline"] = timeline

    record = {
        "suite": "serving-perf",
        "schema_version": 1,
        "scenarios": results,
        "obs": obs,
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = [
            name for name, row in results.items() if not row["byte_identical"]
        ]
        if not obs["byte_identical"]:
            failures.append("obs")
        if not obs["timeline"]["byte_identical"]:
            failures.append("obs.timeline")
        if failures:
            raise SystemExit(f"outputs diverged in: {', '.join(failures)}")
        # Coalescing must still collapse an order of magnitude of events
        # (deterministic on every host) and clearly win on wall clock.
        # The wall-clock floor is deliberately lower than the events
        # ratio: optimizations that speed up the step-by-step baseline
        # shrink the ratio without making anything slower.
        tentpole = results["serving_continuous_5k_256"]
        if tentpole["events_ratio"] < 10.0:
            raise SystemExit(
                f"tentpole events ratio {tentpole['events_ratio']:.1f}x is "
                "below the 10x acceptance bar"
            )
        if tentpole["speedup"] < 3.0:
            raise SystemExit(
                f"tentpole speedup {tentpole['speedup']:.1f}x is below the "
                "3x wall-clock floor"
            )
        for name in ("serving_stream_1M", "fleet_100dev_1M"):
            wall = results[name]["seconds"]
            if wall >= 10.0:
                raise SystemExit(
                    f"{name} took {wall:.1f}s; the million-request bar is "
                    "single-digit seconds"
                )
        # The memory model must really spill (the scenario is pointless
        # otherwise) without wrecking the event loop's wall clock.
        kv_spill = results["serving_kv_spill_100k"]
        if kv_spill["spill_events"] == 0:
            raise SystemExit(
                "serving_kv_spill_100k never spilled; the DRAM budget no "
                "longer forces the flash path"
            )
        if kv_spill["seconds"] >= 15.0:
            raise SystemExit(
                f"serving_kv_spill_100k took {kv_spill['seconds']:.1f}s; "
                "the memory-model bar is 15 seconds for 100k requests"
            )
        # The benign fault engine is the plain loop plus delegation: it
        # must stay byte-identical (checked above) and close on wall
        # clock — a widening gap means the faults=None promise is being
        # paid for even when nothing fires.
        fault = results["fault_overhead_5k_64"]
        if fault["fault_overhead"] >= 3.0:
            raise SystemExit(
                f"benign fault-engine overhead {fault['fault_overhead']:.2f}x "
                "is over the 3x bar"
            )
        if fault["requeued"] == 0 and fault["retries"] == 0:
            raise SystemExit(
                "fault_overhead_5k_64 chaos run neither re-queued nor "
                "retried; the scenario no longer exercises the engine"
            )
        stream_rss = results["serving_stream_1M"]["peak_rss_streaming_kb"]
        record_rss = results["serving_stream_1M"]["peak_rss_inmemory_kb"]
        if stream_rss >= record_rss:
            raise SystemExit(
                f"streaming peak RSS {stream_rss} KB is not below the "
                f"record-keeping run's {record_rss} KB"
            )
        print(
            f"check ok: tentpole {tentpole['events_ratio']:.1f}x fewer "
            f"events ({tentpole['speedup']:.1f}x wall clock), 1M scenarios "
            "in single-digit seconds, streaming RSS below record-keeping, "
            "all outputs identical"
        )

    if args.compare:
        with open(args.compare) as handle:
            committed = json.load(handle).get("scenarios", {})
        regressions = []
        for name, row in results.items():
            old = committed.get(name, {}).get("seconds")
            if old is None:
                continue
            if row["seconds"] > 1.30 * old:
                regressions.append(
                    f"{name}: {old:.2f}s -> {row['seconds']:.2f}s "
                    f"({row['seconds'] / old:.2f}x)"
                )
        if regressions:
            raise SystemExit(
                "wall-clock regressions over 30% vs "
                f"{args.compare}: {'; '.join(regressions)}"
            )
        print(f"compare ok: no scenario regressed >30% vs {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
