"""Tracked perf benchmarks for the serving / fleet / capacity hot paths.

Unlike the figure suite (which checks the *model's numbers*), this suite
tracks how fast the simulators themselves run, so every PR has a perf
trajectory to answer to.  Each scenario times the coalesced event loop
(the default) against the step-by-step reference (``max_steps=1``),
verifies the two produce byte-identical per-request trace CSVs, and
records wall-clock seconds plus events processed into ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/perf/perf_serving.py --output BENCH_serving.json

Wall-clock numbers vary with the host; the events-processed counters and
the byte-identical flags are deterministic.  ``--check`` additionally
enforces the tentpole acceptance bar (>= 10x on the 5k x 256-token
continuous-batching scenario) and that every scenario stayed
byte-identical — used by the non-blocking CI perf job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.api import InferenceRequest  # noqa: E402
from repro.fleet import JoinShortestQueueRouter, build_fleet, simulate_fleet  # noqa: E402
from repro.serving import (  # noqa: E402
    BackendCostModel,
    ContinuousBatchScheduler,
    PoissonWorkload,
    SLOSpec,
    find_max_qps,
    simulate,
)

BACKEND = "cambricon"
MAX_BATCH = 8


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _overload_arrivals(payload, num_requests, *, rate_scale=1.5, seed=0):
    """A Poisson stream slightly above the batched service rate, so the
    device stays saturated and decode dominates (the paper's heavy-traffic
    regime, and the worst case for a per-step event loop)."""
    solo = BackendCostModel(BACKEND).total_seconds(payload)
    rate = rate_scale * MAX_BATCH / solo
    return PoissonWorkload(rate, payload, seed=seed).generate(num_requests)


def bench_serving_continuous(num_requests=5000, gen_tokens=256):
    """The tentpole scenario: 5k requests x 256-token generations under
    continuous batching, coalesced vs. step-by-step."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(payload, num_requests)
    # Warm the backend-profile cache so wall-clock measures the event
    # loop, not the (memoized) analytical backend evaluations.
    simulate(arrivals[:50], BACKEND, ContinuousBatchScheduler(max_batch=MAX_BATCH))

    baseline_s, baseline = _timed(
        lambda: simulate(
            arrivals,
            BACKEND,
            ContinuousBatchScheduler(max_batch=MAX_BATCH),
            max_steps=1,
        )
    )
    coalesced_s, coalesced = _timed(
        lambda: simulate(
            arrivals, BACKEND, ContinuousBatchScheduler(max_batch=MAX_BATCH)
        )
    )
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "seconds": coalesced_s,
        "events": coalesced.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / coalesced_s,
        "events_ratio": baseline.num_events / coalesced.num_events,
        "byte_identical": baseline.to_csv() == coalesced.to_csv(),
    }


def bench_fleet_jsq(num_requests=2000, gen_tokens=128, num_devices=4):
    """Fleet loop: 4 continuous-batching replicas behind JSQ routing."""
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    arrivals = _overload_arrivals(
        payload, num_requests, rate_scale=1.5 * num_devices, seed=1
    )

    def run(max_steps):
        fleet = build_fleet(
            [BACKEND] * num_devices,
            scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=MAX_BATCH),
        )
        return simulate_fleet(
            arrivals, fleet, JoinShortestQueueRouter(), max_steps=max_steps
        )

    run(None)  # warm the profile caches
    baseline_s, baseline = _timed(lambda: run(1))
    coalesced_s, coalesced = _timed(lambda: run(None))
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "num_devices": num_devices,
        "seconds": coalesced_s,
        "events": coalesced.num_events,
        "uncoalesced_seconds": baseline_s,
        "uncoalesced_events": baseline.num_events,
        "speedup": baseline_s / coalesced_s,
        "events_ratio": baseline.num_events / coalesced.num_events,
        "byte_identical": baseline.to_csv() == coalesced.to_csv(),
    }


def bench_capacity_search(num_requests=400, gen_tokens=64):
    """Capacity search: early-exit on hopeless probes vs. full simulation.

    Half of every bisection is failing probes; ``fail_fast`` aborts them
    once attainment is mathematically decided.  The found rate must not
    change.
    """
    payload = InferenceRequest(model="llama2-7b", seq_len=512, gen_tokens=gen_tokens)
    slo = SLOSpec(ttft_s=20.0, e2e_s=120.0)

    def run(fail_fast):
        return find_max_qps(
            BACKEND,
            payload,
            slo,
            scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=MAX_BATCH),
            num_requests=num_requests,
            fail_fast=fail_fast,
        )

    run(True)  # warm the profile caches
    baseline_s, baseline = _timed(lambda: run(False))
    fast_s, fast = _timed(lambda: run(True))

    # Per-probe cost: replay every *failing* rate both ways and count the
    # events the early exit saved (deterministic, host-independent).
    cost = BackendCostModel(BACKEND)
    full_events = aborted_events = 0
    for rate, met in fast.probes:
        if met:
            continue
        arrivals = PoissonWorkload(rate, payload, seed=0).generate(num_requests)
        for fail_fast, bucket in ((False, "full"), (True, "aborted")):
            report = simulate(
                arrivals,
                cost,
                ContinuousBatchScheduler(max_batch=MAX_BATCH),
                slo=slo,
                fail_fast=fail_fast,
            )
            if bucket == "full":
                full_events += report.num_events
            else:
                aborted_events += report.num_events
    return {
        "num_requests": num_requests,
        "gen_tokens": gen_tokens,
        "seconds": fast_s,
        "uncoalesced_seconds": baseline_s,
        "speedup": baseline_s / fast_s,
        "probes": len(fast.probes),
        "max_qps": fast.max_qps,
        "failing_probe_events": aborted_events,
        "failing_probe_events_full": full_events,
        "events_ratio": full_events / aborted_events if aborted_events else 1.0,
        "byte_identical": fast.max_qps == baseline.max_qps
        and fast.probes == baseline.probes,
    }


SCENARIOS = {
    "serving_continuous_5k_256": bench_serving_continuous,
    "fleet_jsq_4dev_2k_128": bench_fleet_jsq,
    "capacity_search_fail_fast": bench_capacity_search,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_serving.json", help="where to write the JSON record"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the tentpole scenario is >=10x and all outputs match",
    )
    args = parser.parse_args(argv)

    results = {}
    for name, bench in SCENARIOS.items():
        print(f"[{name}] running ...", flush=True)
        results[name] = bench()
        row = results[name]
        print(
            f"[{name}] {row['uncoalesced_seconds']:.2f}s -> {row['seconds']:.2f}s "
            f"({row['speedup']:.1f}x), identical={row['byte_identical']}"
        )

    record = {"suite": "serving-perf", "schema_version": 1, "scenarios": results}
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = [
            name for name, row in results.items() if not row["byte_identical"]
        ]
        tentpole = results["serving_continuous_5k_256"]["speedup"]
        if failures:
            raise SystemExit(f"outputs diverged in: {', '.join(failures)}")
        if tentpole < 10.0:
            raise SystemExit(
                f"tentpole speedup {tentpole:.1f}x is below the 10x acceptance bar"
            )
        print(f"check ok: tentpole speedup {tentpole:.1f}x, all outputs identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
