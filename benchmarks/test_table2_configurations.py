"""Table II — the Cambricon-LLM-S/M/L hardware configurations.

Also reports the derived quantities the rest of the evaluation builds on:
the optimal tile shape, the flash/NPU split alpha, and the aggregate
weight-delivery rate of each configuration.
"""

from repro.core import InferenceEngine
from repro.core.config import all_paper_configs
from repro.reporting import print_table


def _rows():
    rows = []
    for key, config in all_paper_configs().items():
        engine = InferenceEngine(config)
        report = engine.decode_report("opt-6.7b")
        rows.append(
            [
                config.name,
                config.flash.channels,
                config.flash.chips_per_channel,
                config.flash.total_compute_cores,
                str(engine.selected_tile()),
                report.alpha,
                report.combined_weight_rate / 1e9,
            ]
        )
    return rows


def test_table2_configurations(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Table II — configurations (plus derived tile, alpha and delivery rate)",
        ["config", "channels", "chips/ch", "compute cores", "tile", "alpha", "weight rate (GB/s)"],
        rows,
    )
    assert [r[1] for r in rows] == [8, 16, 32]
    assert [r[2] for r in rows] == [2, 4, 8]
    assert rows[0][4] == "256x2048"
