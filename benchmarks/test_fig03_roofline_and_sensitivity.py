"""Fig. 3 — roofline of smartphone NPU vs our architecture, and the
OPT-6.7B sensitivity to raw flash bit-flip errors (no ECC).
"""

from repro.accuracy import ErrorInjectionStudy, paper_tasks
from repro.analysis.roofline import (
    REFERENCE_PLATFORMS,
    cambricon_llm_platform,
    llm_decode_point,
    roofline_performance,
)
from repro.core import cambricon_llm_s
from repro.reporting import print_table

ERROR_RATES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)


def _roofline_rows():
    decode = llm_decode_point("opt-6.7b")
    smartphone = next(p for p in REFERENCE_PLATFORMS if p.name == "Smartphone NPU")
    ours = cambricon_llm_platform(cambricon_llm_s())
    rows = []
    for label, platform in (("A: smartphone NPU", smartphone), ("B: Cambricon-LLM-S", ours)):
        point = roofline_performance(decode, platform)
        rows.append(
            [
                label,
                platform.memory_bandwidth / 1e9,
                point.attainable_ops_per_second / 1e9,
                "memory-bound" if not point.compute_bound else "compute-bound",
            ]
        )
    return rows


def _sensitivity_rows():
    rows = []
    for name, task in paper_tasks().items():
        study = ErrorInjectionStudy(task, trials=2)
        for result in study.sweep(ERROR_RATES):
            rows.append(
                [
                    name,
                    f"{result.error_rate:.0e}",
                    100 * result.baseline_accuracy,
                    100 * result.accuracy_without_ecc,
                ]
            )
    return rows


def test_fig03a_roofline(benchmark, once):
    rows = once(benchmark, _roofline_rows)
    print_table(
        "Fig. 3(a) — roofline: weight-delivery bandwidth and attainable decode throughput",
        ["platform", "weight bandwidth (GB/s)", "attainable (GOPS)", "regime"],
        rows,
    )
    assert rows[1][2] > rows[0][2] * 0.3  # our point is at least comparable


def test_fig03b_error_sensitivity_without_ecc(benchmark, once):
    rows = once(benchmark, _sensitivity_rows)
    print_table(
        "Fig. 3(b) — proxy-task accuracy vs raw bit-flip rate (no ECC)",
        ["task", "bit flip rate", "clean accuracy (%)", "accuracy (%)"],
        rows,
    )
    # The paper's qualitative claim: accuracy collapses by over ~40 % at high
    # error rates when no protection is applied.
    hellaswag = [r for r in rows if r[0] == "hellaswag"]
    assert hellaswag[-1][3] < 0.6 * hellaswag[0][2]
