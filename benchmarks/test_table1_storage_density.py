"""Table I — storage density of DRAM versus NAND flash."""

from repro.cost.density import STORAGE_DENSITY_TABLE, density_advantage
from repro.reporting import print_table


def _rows():
    return [
        [e.manufacturer, e.memory_type, e.layers, e.density_gbit_per_mm2, e.area_mm2_for_bytes(80e9)]
        for e in STORAGE_DENSITY_TABLE
    ]


def test_table1_storage_density(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Table I — storage density (and area to hold an 80 GB model)",
        ["manufacturer", "type", "layers", "Gb/mm^2", "mm^2 for 80 GB"],
        rows,
    )
    assert density_advantage() > 60
