"""Fig. 13 — decode speed of Cam-LLM-S under different tile shapes."""

from repro.core import InferenceEngine, TileShape, cambricon_llm_s
from repro.llm.models import PAPER_MODEL_ORDER
from repro.reporting import print_table

TILES = (TileShape(256, 2048), TileShape(128, 4096), TileShape(4096, 128))


def _rows():
    engines = {tile: InferenceEngine(cambricon_llm_s(), tile=tile) for tile in TILES}
    rows = []
    for model in PAPER_MODEL_ORDER:
        speeds = [engines[tile].decode_speed(model) for tile in TILES]
        rows.append([model] + speeds + [speeds[0] / speeds[2]])
    return rows


def test_fig13_tile_shape_ablation(benchmark, once):
    rows = once(benchmark, _rows)
    print_table(
        "Fig. 13 — tile-shape ablation on Cambricon-LLM-S "
        "(paper: 256x2048 beats 128x4096 by 17.5% and 4096x128 by 24.7%)",
        ["model", "256x2048 (tok/s)", "128x4096 (tok/s)", "4096x128 (tok/s)", "best/worst"],
        rows,
    )
    for row in rows:
        optimal, wide, tall = row[1], row[2], row[3]
        assert optimal >= wide * 0.999
        assert optimal > tall
