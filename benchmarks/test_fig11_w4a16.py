"""Fig. 11 — decode speed under W8A8 versus W4A16 quantization."""

from repro.core import InferenceEngine, cambricon_llm_l, cambricon_llm_s
from repro.llm.models import PAPER_MODEL_ORDER
from repro.reporting import print_table

PAPER_GAINS = {"Cambricon-LLM-S": 1.853, "Cambricon-LLM-L": 1.479}


def _rows(config_factory):
    config = config_factory()
    w8 = InferenceEngine(config)
    w4 = InferenceEngine(config.with_quantization(4, 16))
    rows = []
    for model in PAPER_MODEL_ORDER:
        base = w8.decode_speed(model)
        quant = w4.decode_speed(model)
        rows.append([model, base, quant, quant / base])
    return rows


def test_fig11a_w4a16_on_cambricon_s(benchmark, once):
    rows = once(benchmark, lambda: _rows(cambricon_llm_s))
    print_table(
        "Fig. 11(a) — Cambricon-LLM-S decode speed, W8A8 vs W4A16 (paper avg gain 1.85x)",
        ["model", "W8A8 (tok/s)", "W4A16 (tok/s)", "speedup"],
        rows,
    )
    average_gain = sum(r[3] for r in rows) / len(rows)
    assert 1.3 < average_gain < 2.0


def test_fig11b_w4a16_on_cambricon_l(benchmark, once):
    rows = once(benchmark, lambda: _rows(cambricon_llm_l))
    print_table(
        "Fig. 11(b) — Cambricon-LLM-L decode speed, W8A8 vs W4A16 (paper avg gain 1.48x)",
        ["model", "W8A8 (tok/s)", "W4A16 (tok/s)", "speedup"],
        rows,
    )
    average_gain = sum(r[3] for r in rows) / len(rows)
    assert 1.1 < average_gain < 2.0
    # Larger models benefit more (they are more weight-bandwidth bound).
    assert rows[3][3] >= rows[0][3]
