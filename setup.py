"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e . --no-use-pep517``) work on
systems without the ``wheel`` package or network access.
"""

from setuptools import setup

setup()
