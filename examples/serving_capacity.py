"""Serving simulation walkthrough: from one job to SLO-bounded capacity.

The paper's cost model prices a single decode job; `repro.serving` asks
the production question on top of it: how many users can this device
sustain?  This script walks the whole subsystem:

1. price one request with the unified API (the device model),
2. replay a bursty multi-request workload through three schedulers and
   compare their latency percentiles,
3. bisect for the maximum sustainable Poisson arrival rate under an SLO
   (FCFS versus continuous batching).

Run with::

    PYTHONPATH=src python examples/serving_capacity.py [model] [config]

e.g. ``PYTHONPATH=src python examples/serving_capacity.py llama2-7b L``.
Everything is seeded — two runs print identical numbers.
"""

from __future__ import annotations

import sys

from repro.api import ExperimentRunner, InferenceRequest, get_backend
from repro.reporting import print_table
from repro.serving import (
    ContinuousBatchScheduler,
    FCFSScheduler,
    OnOffWorkload,
    SLOSpec,
    StaticBatchScheduler,
    find_max_qps,
    simulate,
)

SEED = 0
NUM_REQUESTS = 120


def main(model: str = "llama2-7b", config: str = "L") -> None:
    # A decode-heavy shape (chat turn: short prompt, long answer) — the
    # regime where step-level batching pays, since the batch shares each
    # decode step's weight stream.
    payload = InferenceRequest(model=model, config=config, seq_len=500, gen_tokens=256)

    # -- 1. the device model: one job, priced by the unified API ------------
    solo = get_backend("cambricon").run(payload)
    print(f"Model              : {model} on {solo.backend_name}")
    print(f"Solo job           : {solo.total_seconds:.2f} s "
          f"(TTFT {solo.time_to_first_token_s:.2f} s, "
          f"{1e3 * solo.decode_step_seconds:.1f} ms/step)")
    print(f"Single-stream rate : {1.0 / solo.total_seconds:.3f} req/s\n")

    # -- 2. bursty traffic through three schedulers -------------------------
    # Sharing one runner memoizes every backend profile across all runs.
    runner = ExperimentRunner()
    slo = SLOSpec(ttft_s=4 * solo.time_to_first_token_s, e2e_s=8 * solo.total_seconds)
    workload = OnOffWorkload(
        burst_qps=0.5 / solo.total_seconds * 4,
        payload=payload,
        on_seconds=60.0,
        off_seconds=60.0,
        seed=SEED,
    )
    arrivals = workload.generate(NUM_REQUESTS)
    rows = []
    for scheduler in (
        FCFSScheduler(),
        StaticBatchScheduler(max_batch=8),
        ContinuousBatchScheduler(max_batch=8),
    ):
        report = simulate(arrivals, "cambricon", scheduler, slo=slo, runner=runner)
        ttft = report.percentiles("ttft")
        e2e = report.percentiles("e2e")
        rows.append(
            [
                scheduler.name,
                report.throughput_rps,
                ttft["p50"],
                ttft["p95"],
                e2e["p95"],
                100.0 * report.utilization,
                100.0 * report.slo_attainment(),
            ]
        )
    print_table(
        f"Bursty on/off traffic — {NUM_REQUESTS} requests, seed {SEED}",
        ["scheduler", "req/s", "TTFT p50 (s)", "TTFT p95 (s)",
         "e2e p95 (s)", "util (%)", "SLO att. (%)"],
        rows,
    )

    # -- 3. SLO-bounded capacity: FCFS vs continuous batching ---------------
    rows = []
    for name, factory in (
        ("fcfs", FCFSScheduler),
        ("continuous", lambda: ContinuousBatchScheduler(max_batch=8)),
    ):
        capacity = find_max_qps(
            "cambricon",
            payload,
            slo,
            scheduler_factory=factory,
            num_requests=NUM_REQUESTS,
            seed=SEED,
            runner=runner,
        )
        rows.append(
            [
                name,
                capacity.max_qps,
                capacity.report.goodput_rps(),
                100.0 * capacity.report.utilization,
                len(capacity.probes),
            ]
        )
    print_table(
        f"Max sustainable Poisson rate under the SLO "
        f"(TTFT<{slo.ttft_s:.1f}s, e2e<{slo.e2e_s:.1f}s, "
        f"{100 * slo.min_attainment:.0f}% attainment)",
        ["scheduler", "max qps", "goodput (req/s)", "util (%)", "probes"],
        rows,
    )
    info = runner.cache_info()
    print(f"\nBackend evaluations: {info['misses']} "
          f"(memoized across {info['hits'] + info['misses']} cost queries)")


if __name__ == "__main__":
    arguments = sys.argv[1:]
    if arguments and arguments[0] in ("-h", "--help"):
        print(__doc__)
        sys.exit(0)
    main(*arguments)
