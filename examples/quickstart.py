"""Quickstart: estimate on-device decode speed for one model and configuration.

Run with::

    python examples/quickstart.py [model] [config]

e.g. ``python examples/quickstart.py llama2-70b L``.
"""

from __future__ import annotations

import sys

from repro import InferenceEngine, get_config, list_models
from repro.reporting import print_table


def main(model: str = "llama2-70b", config_name: str = "L") -> None:
    config = get_config(config_name)
    engine = InferenceEngine(config)
    report = engine.decode_report(model)

    print(f"Model            : {report.model_name}")
    print(f"Configuration    : {report.config_name}")
    print(f"Tile shape       : {report.tile}")
    print(f"Flash share alpha: {report.alpha:.2f}")
    print(f"Decode speed     : {report.tokens_per_second:.2f} token/s "
          f"({1e3 * report.token_seconds:.1f} ms per token)")
    print(f"Channel usage    : {100 * report.channel_utilization:.0f}%")

    timing = report.layer_timing
    print_table(
        "Per-layer latency breakdown (one decode step)",
        ["component", "milliseconds"],
        [
            ["weight GeMVs (flash + NPU)", 1e3 * timing.weight_seconds],
            ["exposed KV-cache attention", 1e3 * timing.kv_seconds],
            ["SFU / element-wise", 1e3 * timing.sfu_seconds],
            ["pipeline sync", 1e3 * timing.sync_seconds],
            ["LM head (once per token)", 1e3 * report.lm_head_seconds],
        ],
    )

    traffic = report.traffic
    print_table(
        "Per-token data movement",
        ["path", "GB"],
        [
            ["NAND array reads (inside flash)", traffic.flash_internal_bytes / 1e9],
            ["weights streamed over D2D link", traffic.d2d_stream_bytes / 1e9],
            ["input/result vectors over D2D link", traffic.d2d_vector_bytes / 1e9],
            ["KV cache from LPDDR", traffic.dram_kv_bytes / 1e9],
        ],
    )


if __name__ == "__main__":
    arguments = sys.argv[1:]
    if arguments and arguments[0] in ("-h", "--help"):
        print(__doc__)
        print("Available models:", ", ".join(list_models()))
        sys.exit(0)
    main(*arguments)
