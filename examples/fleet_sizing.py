"""Fleet simulation walkthrough: from one device to a sized cluster.

`repro.serving` answers "how much load fits one device"; `repro.fleet`
asks the cluster questions on top of it.  This script walks the whole
subsystem:

1. measure a single device's maximum sustainable rate under an SLO,
2. show N replicas under join-shortest-queue routing sustaining ~N times
   that rate (the replication story),
3. route one workload across a *mixed* fleet (Cambricon-LLM-S + L) and
   compare round-robin with SLO-aware routing on goodput,
4. size a fleet for a target rate — plain replicas versus tensor-parallel
   sharded replicas — with `size_fleet`.

Run with::

    PYTHONPATH=src python examples/fleet_sizing.py [model] [config]

e.g. ``PYTHONPATH=src python examples/fleet_sizing.py llama2-7b L``.
Everything is seeded — two runs print identical numbers.
"""

from __future__ import annotations

import sys

from repro.api import CambriconBackend, ExperimentRunner, InferenceRequest
from repro.core import get_config
from repro.fleet import (
    JoinShortestQueueRouter,
    RoundRobinRouter,
    ShardingSpec,
    SLOAwareRouter,
    build_fleet,
    simulate_fleet,
    size_fleet,
)
from repro.serving import PoissonWorkload, SLOSpec, find_max_qps

SEED = 0
NUM_REQUESTS = 150


def main(model: str = "llama2-7b", config: str = "L") -> None:
    payload = InferenceRequest(model=model, config=config, seq_len=500, gen_tokens=64)
    runner = ExperimentRunner()  # one memoized runner for every experiment

    # -- 1. the single-device ceiling ---------------------------------------
    solo = runner.run("cambricon", payload)
    slo = SLOSpec(ttft_s=6 * solo.time_to_first_token_s, e2e_s=4 * solo.total_seconds)
    capacity = find_max_qps(
        "cambricon", payload, slo,
        num_requests=NUM_REQUESTS, seed=SEED, runner=runner,
    )
    print(f"Model                 : {model} on {solo.backend_name}")
    print(f"Single-device max qps : {capacity.max_qps:.3f} under the SLO\n")

    # -- 2. N replicas under JSQ sustain ~N x that rate ---------------------
    print("Replication (join-shortest-queue, 80% of the ideal N x rate):")
    for n in (2, 4, 8):
        rate = 0.8 * n * capacity.max_qps
        fleet = build_fleet(["cambricon"] * n, runner=runner)
        report = simulate_fleet(
            PoissonWorkload(rate, payload, seed=SEED).generate(NUM_REQUESTS),
            fleet,
            JoinShortestQueueRouter(),
            slo=slo,
        )
        print(
            f"  {n} replicas @ {rate:6.3f} qps: attainment "
            f"{100 * report.slo_attainment():5.1f}%  meets SLO: "
            f"{report.meets_slo()}  imbalance {report.imbalance:.3f}"
        )

    # -- 3. heterogeneous fleet: routing policy matters ---------------------
    # Two big chiplets plus two small ones; the SLO-aware router knows the
    # S devices are slower and only spills onto them under pressure.
    def mixed_fleet():
        return build_fleet(
            [
                CambriconBackend(config=get_config("L")),
                CambriconBackend(config=get_config("L")),
                CambriconBackend(config=get_config("S")),
                CambriconBackend(config=get_config("S")),
            ],
            runner=runner,
        )

    rate = 2.0 * capacity.max_qps
    arrivals = PoissonWorkload(rate, payload, seed=SEED).generate(NUM_REQUESTS)
    print(f"\nMixed fleet (2xL + 2xS) at {rate:.3f} qps:")
    for router in (RoundRobinRouter(), SLOAwareRouter()):
        report = simulate_fleet(arrivals, mixed_fleet(), router, slo=slo)
        print(
            f"  {router.name:12s}: goodput {report.goodput_rps():.3f} req/s, "
            f"attainment {100 * report.slo_attainment():5.1f}%, "
            f"p95 e2e {report.percentiles('e2e')['p95']:.1f} s"
        )

    # -- 4. fleet sizing: replicas vs tensor-parallel shards ----------------
    target = 3.0 * capacity.max_qps
    sizing = size_fleet(
        "cambricon", payload, slo, target,
        shardings=[ShardingSpec(), ShardingSpec(tensor_parallel=2)],
        num_requests=NUM_REQUESTS, seed=SEED, runner=runner,
    )
    spec = sizing.sharding
    print(
        f"\nSizing for {target:.3f} qps: {sizing.num_replicas} replicas "
        f"x (tp{spec.tensor_parallel} pp{spec.pipeline_parallel}) "
        f"= {sizing.num_chips} chips ({len(sizing.probes)} probes)"
    )
    info = runner.cache_info()
    print(
        f"\nEvery experiment above cost {info['misses']} backend evaluations "
        f"({info['hits']} cache hits) — the fleet loop re-prices occupancies "
        "from memoized profiles."
    )


if __name__ == "__main__":
    main(*sys.argv[1:])
