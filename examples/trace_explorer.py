"""Observability walkthrough: trace a spill-heavy run and read the spans.

`repro.obs` turns a simulation from a single summary table into an
inspectable timeline.  This script drives a deliberately DRAM-starved
continuous-batching run so the memory model spills hot, then:

1. records it with a `SpanRecorder` — request QUEUE/PREFILL/DECODE
   phases, occupancy spans, admission verdicts, coalescing caps and
   every spill/refill land on named tracks of the simulated clock,
2. dumps the stream as Perfetto/Chrome trace-event JSON (open
   ``trace_explorer.json`` at https://ui.perfetto.dev to scrub it),
3. summarizes the heaviest span names and the spill traffic straight
   from the recorder — no JSON round trip needed,
4. proves the observer effect is zero: the recorded run's trace CSV is
   byte-identical to an unrecorded one,
5. snapshots the report as Prometheus text (`serving_snapshot`).

Run with::

    PYTHONPATH=src python examples/trace_explorer.py

Everything is seeded — two runs print identical numbers (and identical
trace bytes).
"""

from __future__ import annotations

import os
import random

from repro.api import InferenceRequest
from repro.memory import MemorySpec
from repro.obs import SpanRecorder, serving_snapshot
from repro.reporting import print_table
from repro.serving import ContinuousBatchScheduler, PoissonWorkload, simulate
from repro.units import MiB

SEED = 11
OUT = os.path.join(os.path.dirname(__file__), "trace_explorer.json")

#: opt-6.7b at 16-bit KV: a 500-token prompt owes 250 MiB of residency,
#: so a 384 MiB DRAM pool fits ~1.5 prompts — admissions spill hot.
PAYLOAD = InferenceRequest(model="opt-6.7b", seq_len=500, gen_tokens=24)
TIGHT = MemorySpec(dram_bytes=384 * MiB)


def _mixed(rng: random.Random, index: int) -> InferenceRequest:
    """Stagger generation lengths so completions free DRAM mid-run."""
    return PAYLOAD.with_overrides(gen_tokens=rng.choice([8, 24, 40, 64]))


def _run(recorder=None):
    return simulate(
        PoissonWorkload(2.0, _mixed, seed=SEED).generate(60),
        "cambricon",
        ContinuousBatchScheduler(max_batch=4, memory=TIGHT),
        recorder=recorder,
    )


def main() -> None:
    recorder = SpanRecorder()
    report = _run(recorder)

    # -- 1. the timeline, exported -------------------------------------------
    recorder.to_perfetto(OUT)
    print(f"Wrote {len(recorder.events)} events to {OUT}")
    print("Open it at https://ui.perfetto.dev — tracks:", ", ".join(recorder.tracks()))

    # -- 2. heaviest span names straight from the recorder -------------------
    print_table(
        "Top spans by total simulated time",
        ["span", "total (s)", "count"],
        [[name, f"{total:.2f}", count] for name, total, count in recorder.top_spans(6)],
    )

    # -- 3. the spill story ---------------------------------------------------
    spills = recorder.instants("spill")
    refills = recorder.instants("refill")
    blocked = recorder.instants("admit_blocked")
    print_table(
        "Memory events",
        ["event", "count", "bytes"],
        [
            ["spill", len(spills), sum(e[5]["bytes"] for e in spills)],
            ["refill", len(refills), sum(e[5]["bytes"] for e in refills)],
            ["admission blocked", len(blocked), "-"],
        ],
    )
    verdicts = [event[5]["verdict"] for event in recorder.instants("admit")]
    print(
        f"Admissions: {verdicts.count('dram')} straight to DRAM, "
        f"{verdicts.count('dram+spill')} had to spill a neighbour first."
    )

    # -- 4. recording is invisible to the simulation --------------------------
    bare = _run()
    assert bare.to_csv() == report.to_csv(), "observer effect!"
    print("\nByte-identity check: recorded CSV == unrecorded CSV (OK)")

    # -- 5. the same run as a Prometheus snapshot -----------------------------
    snapshot = serving_snapshot(report)
    spill_ops = snapshot.value("repro_kv_memory_ops_total", op="spill")
    print(
        f"Metrics snapshot: {len(snapshot.samples)} samples; "
        f"repro_kv_memory_ops_total{{op=\"spill\"}} = {spill_ops:g}"
    )


if __name__ == "__main__":
    main()
