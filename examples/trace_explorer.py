"""Observability walkthrough: trace a spill-heavy run and read the spans.

`repro.obs` turns a simulation from a single summary table into an
inspectable timeline.  This script drives a deliberately DRAM-starved
continuous-batching run so the memory model spills hot, then:

1. records it with a `SpanRecorder` — request QUEUE/PREFILL/DECODE
   phases, occupancy spans, admission verdicts, coalescing caps and
   every spill/refill land on named tracks of the simulated clock,
2. dumps the stream as Perfetto/Chrome trace-event JSON (open
   ``trace_explorer.json`` at https://ui.perfetto.dev to scrub it),
3. summarizes the heaviest span names and the spill traffic straight
   from the recorder — no JSON round trip needed,
4. proves the observer effect is zero: the recorded run's trace CSV is
   byte-identical to an unrecorded one,
5. snapshots the report as Prometheus text (`serving_snapshot`),
6. folds the same emission stream into a windowed timeline
   (`TimelineCollector`, tee'd alongside the span recorder) and writes
   ``trace_explorer_timeline.csv``,
7. attributes the critical path (`critical_path`): where the aggregate
   and tail time went, and the occupancy chain the makespan sits on,
8. replays the bundled flash-crowd trace with SLO burn-rate alert rules
   attached and prints the deterministic fire/resolve log.

Run with::

    PYTHONPATH=src python examples/trace_explorer.py

Everything is seeded — two runs print identical numbers (and identical
trace bytes).
"""

from __future__ import annotations

import os
import random

from repro.api import InferenceRequest
from repro.memory import MemorySpec
from repro.obs import (
    SpanRecorder,
    TeeRecorder,
    TimelineCollector,
    burn_rate_pack,
    critical_path,
    serving_snapshot,
)
from repro.reporting import print_table
from repro.serving import (
    ContinuousBatchScheduler,
    PoissonWorkload,
    SLOSpec,
    load_bundled_trace,
    simulate,
)
from repro.units import MiB

SEED = 11
OUT = os.path.join(os.path.dirname(__file__), "trace_explorer.json")
TIMELINE_OUT = os.path.join(
    os.path.dirname(__file__), "trace_explorer_timeline.csv"
)

#: opt-6.7b at 16-bit KV: a 500-token prompt owes 250 MiB of residency,
#: so a 384 MiB DRAM pool fits ~1.5 prompts — admissions spill hot.
PAYLOAD = InferenceRequest(model="opt-6.7b", seq_len=500, gen_tokens=24)
TIGHT = MemorySpec(dram_bytes=384 * MiB)


def _mixed(rng: random.Random, index: int) -> InferenceRequest:
    """Stagger generation lengths so completions free DRAM mid-run."""
    return PAYLOAD.with_overrides(gen_tokens=rng.choice([8, 24, 40, 64]))


def _run(recorder=None):
    return simulate(
        PoissonWorkload(2.0, _mixed, seed=SEED).generate(60),
        "cambricon",
        ContinuousBatchScheduler(max_batch=4, memory=TIGHT),
        recorder=recorder,
    )


def main() -> None:
    recorder = SpanRecorder()
    timeline = TimelineCollector(window_s=5.0)
    report = _run(TeeRecorder(recorder, timeline))

    # -- 1. the timeline, exported -------------------------------------------
    recorder.to_perfetto(OUT)
    print(f"Wrote {len(recorder.events)} events to {OUT}")
    print("Open it at https://ui.perfetto.dev — tracks:", ", ".join(recorder.tracks()))

    # -- 2. heaviest span names straight from the recorder -------------------
    print_table(
        "Top spans by total simulated time",
        ["span", "total (s)", "count"],
        [[name, f"{total:.2f}", count] for name, total, count in recorder.top_spans(6)],
    )

    # -- 3. the spill story ---------------------------------------------------
    spills = recorder.instants("spill")
    refills = recorder.instants("refill")
    blocked = recorder.instants("admit_blocked")
    print_table(
        "Memory events",
        ["event", "count", "bytes"],
        [
            ["spill", len(spills), sum(e[5]["bytes"] for e in spills)],
            ["refill", len(refills), sum(e[5]["bytes"] for e in refills)],
            ["admission blocked", len(blocked), "-"],
        ],
    )
    verdicts = [event[5]["verdict"] for event in recorder.instants("admit")]
    print(
        f"Admissions: {verdicts.count('dram')} straight to DRAM, "
        f"{verdicts.count('dram+spill')} had to spill a neighbour first."
    )

    # -- 4. recording is invisible to the simulation --------------------------
    bare = _run()
    assert bare.to_csv() == report.to_csv(), "observer effect!"
    print("\nByte-identity check: recorded CSV == unrecorded CSV (OK)")

    # -- 5. the same run as a Prometheus snapshot -----------------------------
    snapshot = serving_snapshot(report)
    spill_ops = snapshot.value("repro_kv_memory_ops_total", op="spill")
    print(
        f"Metrics snapshot: {len(snapshot.samples)} samples; "
        f"repro_kv_memory_ops_total{{op=\"spill\"}} = {spill_ops:g}"
    )

    # -- 6. the run as a windowed timeline ------------------------------------
    timeline.to_csv(TIMELINE_OUT)
    rows = timeline.to_rows()
    assert sum(r["completions"] for r in rows) == report.num_completed
    print(
        f"\nWrote {len(rows)} timeline windows ({timeline.window_s:g}s wide) "
        f"to {TIMELINE_OUT}"
    )
    busiest = max(rows, key=lambda r: r["completions"])
    print_table(
        f"Busiest window: #{busiest['window']} "
        f"[{busiest['start_s']:g}s, {busiest['end_s']:g}s)",
        ["metric", "value"],
        [
            ["arrivals / completions", f"{busiest['arrivals']} / {busiest['completions']}"],
            ["queue depth mean/max", f"{busiest['queue_depth_mean']:.2f}/{busiest['queue_depth_max']}"],
            ["device utilization", f"{busiest['utilization']:.2f}"],
            ["KV spill bytes", busiest["kv_spill_bytes"]],
            ["KV DRAM peak (bytes)", busiest["kv_dram_peak_bytes"]],
        ],
    )

    # -- 7. critical-path attribution -----------------------------------------
    analysis = critical_path(recorder)
    headers, table = analysis.attribution_rows()
    print_table("Critical-path attribution", headers, table)
    chain = analysis.makespan_chain
    print(
        f"Makespan chain: {chain.spans} back-to-back occupancies on "
        f"{chain.track!r}, [{chain.start_s:.1f}s, {chain.end_s:.1f}s]"
    )

    # -- 8. the flash crowd, with burn-rate alerts attached -------------------
    # Thresholds the quiet baseline meets comfortably, so the burn-rate
    # rules stay silent until the ~40x spike lands and the backlog
    # starts eating the error budget.
    slo = SLOSpec(ttft_s=60.0, e2e_s=120.0, min_attainment=0.9)
    alerting = TimelineCollector(
        window_s=30.0, slo=slo, rules=burn_rate_pack(slo.min_attainment, 30.0)
    )
    crowd = simulate(
        load_bundled_trace("flash_crowd").generate(300),
        "cambricon",
        ContinuousBatchScheduler(max_batch=8),
        slo=slo,
        recorder=alerting,
    )
    print(
        f"\nFlash crowd: {crowd.num_completed} requests, "
        f"SLO attainment {crowd.slo_attainment(slo):.2f}"
    )
    headers, table = crowd.alerts.summary_rows()
    print_table("Alerts (simulated clock)", headers, table)
    assert crowd.alerts.fires(), "the flash crowd should have paged someone"


if __name__ == "__main__":
    main()
