"""Scenario: a chaos day for a four-replica flash-NPU serving fleet.

A diurnal tenant is humming along when two replicas crash in the evening
peak.  This example wires the whole resilience stack together: the
failover router steers new arrivals around the dead replicas, crash
re-queues put in-flight work back on the survivors, client retries absorb
flaky verdicts, and the windowed timeline feeds SLO burn-rate rules that
page while the error budget burns and resolve once the fleet recovers.
Everything runs on the simulated clock from a fixed seed, so the chaos
day replays byte-identically.
"""

from __future__ import annotations

from repro.faults import FaultSpec, RetryPolicy
from repro.fleet import build_fleet, get_router, simulate_fleet
from repro.obs import TimelineCollector, burn_rate_pack
from repro.reporting import print_table
from repro.api import get_backend
from repro.serving import ContinuousBatchScheduler, SLOSpec, load_bundled_trace

SLO = SLOSpec(ttft_s=45.0, e2e_s=90.0, min_attainment=0.95)

#: Both crashes land inside the evening peak of the bundled diurnal trace
#: (arrival rate tops out around t = 255-300 s).
CHAOS = FaultSpec(
    crash_windows=((0, 255.0, 25.0), (1, 260.0, 25.0)),
    flaky_prob=0.03,
    seed=13,
)
RETRY = RetryPolicy(max_attempts=3, backoff_s=0.5)
WINDOW_S = 10.0


def run_chaos_day():
    arrivals = load_bundled_trace("diurnal").generate(180)
    fleet = build_fleet(
        [get_backend("cambricon")] * 4,
        scheduler_factory=lambda: ContinuousBatchScheduler(max_batch=4),
    )
    timeline = TimelineCollector(
        window_s=WINDOW_S,
        slo=SLO,
        rules=burn_rate_pack(SLO.min_attainment, WINDOW_S),
    )
    report = simulate_fleet(
        arrivals,
        fleet,
        get_router("failover"),
        slo=SLO,
        faults=CHAOS,
        retry=RETRY,
        deadline_s=90.0,
        recorder=timeline,
    )
    return report, timeline


def resilience_summary(report) -> None:
    faults = report.faults
    print_table(
        "Chaos day: what the clients saw",
        ["quantity", "value"],
        [
            ["requests / completed", f"{report.num_requests} / {report.num_completed}"],
            ["SLO attainment", f"{report.slo_attainment():.1%}"],
            ["fleet availability", f"{faults.availability:.2%}"],
            ["crashes / recoveries", f"{faults.crashes} / {faults.recoveries}"],
            [
                "time to recover (mean / max)",
                f"{faults.mean_time_to_recover_s:.0f} s / "
                f"{faults.max_time_to_recover_s:.0f} s",
            ],
            ["client retries", faults.retries],
            ["crash re-queues", faults.requeued],
            ["shed / timed out / failed", f"{faults.shed} / {faults.timed_out} / {faults.failed}"],
        ],
    )


def alert_story(report) -> None:
    log = report.alerts
    rows = [
        [f"{event.time_s:8.1f} s", event.rule, event.kind, f"{event.value:.1f}x"]
        for event in log.events
    ]
    print_table(
        "SLO burn-rate alerts over the outage",
        ["sim time", "rule", "event", "burn"],
        rows,
    )
    fired = log.fires()
    resolves = [event for event in log.events if event.kind == "resolve"]
    if fired:
        first_crash = CHAOS.crash_windows[0][1]
        print(
            f"First page {fired[0].time_s - first_crash:.0f} s after the "
            f"first crash; {len(fired)} fire(s) and {len(resolves)} "
            "resolve(s) as the fleet recovers and the backlog drains."
        )


def outage_window_view(timeline) -> None:
    """The windows around the crash: misses spike, retries kick in."""
    rows = []
    for row in timeline.to_rows():
        if 240.0 <= row["start_s"] <= 330.0:
            rows.append(
                [
                    f"{row['start_s']:5.0f}-{row['end_s']:.0f} s",
                    row["completions"],
                    row["slo_met"],
                    row["fault_events"],
                    row["retries"],
                    row["timed_out"],
                ]
            )
    print_table(
        "Timeline windows around the outage",
        ["window", "completed", "slo met", "fault events", "retries", "timed out"],
        rows,
    )


if __name__ == "__main__":
    report, timeline = run_chaos_day()
    resilience_summary(report)
    outage_window_view(timeline)
    alert_story(report)
