"""Scenario: how long can a worn flash chip keep serving a usable model?

Flash bit-error rates grow with programme/erase cycles and retention time.
This example walks the full reliability path of the paper: it encodes weight
pages with the outlier ECC, injects raw bit errors at increasing rates, and
reports the task accuracy with and without the on-die Error Correction Unit,
plus the analytical protection headroom the majority-vote code provides.
"""

from __future__ import annotations

import numpy as np

from repro.accuracy import ErrorInjectionStudy, paper_tasks
from repro.ecc import BitFlipErrorModel, PageCodec, PageLayout
from repro.ecc.analysis import protected_flip_rate, protection_gain
from repro.reporting import print_table

ERROR_RATES = (1e-5, 1e-4, 2e-4, 8e-4, 2e-3)


def ecc_layout_summary() -> None:
    layout = PageLayout()
    print_table(
        "On-die ECC layout for a 16 KB page",
        ["quantity", "value"],
        [
            ["weights per page", layout.elements_per_page],
            ["protected outliers per page", layout.protected_per_page],
            ["address bits (+ Hamming parity)", f"{layout.address_bits} (+5)"],
            ["ECC bytes per page", layout.ecc_bytes],
            ["spare area per page", layout.spare_bytes],
            ["fits in spare area", layout.fits_in_spare()],
        ],
    )


def single_page_demo() -> None:
    """Corrupt one page heavily and show what the ECU recovers."""
    rng = np.random.default_rng(0)
    page = np.clip(rng.normal(scale=6.0, size=16384), -40, 40).astype(np.int8)
    outlier_positions = rng.choice(16384, size=160, replace=False)
    page[outlier_positions] = np.int8(110) * rng.choice([-1, 1], size=160).astype(np.int8)

    codec = PageCodec()
    ecc = codec.encode(page)
    corrupted = BitFlipErrorModel(1e-3, seed=1).inject_bytes(page)
    corrected = codec.correct(corrupted, codec.corrupt_ecc(ecc, BitFlipErrorModel(1e-3, seed=2)))

    def rms_error(candidate):
        return float(np.sqrt(np.mean((candidate.astype(np.float64) - page) ** 2)))

    print_table(
        "Single-page recovery at a 1e-3 raw bit error rate",
        ["page state", "RMS weight error (codes)", "corrupted outliers"],
        [
            ["after bit flips, no ECC", rms_error(corrupted),
             int(np.sum(corrupted[outlier_positions] != page[outlier_positions]))],
            ["after on-die correction", rms_error(corrected),
             int(np.sum(corrected[outlier_positions] != page[outlier_positions]))],
        ],
    )


def accuracy_over_lifetime() -> None:
    rows = []
    for name, task in paper_tasks().items():
        study = ErrorInjectionStudy(task, trials=2)
        for result in study.sweep(ERROR_RATES):
            rows.append(
                [
                    name,
                    f"{result.error_rate:.0e}",
                    100 * result.accuracy_without_ecc,
                    100 * result.accuracy_with_ecc,
                ]
            )
    print_table(
        "Proxy-task accuracy (%) over the flash error-rate lifetime",
        ["task", "raw bit error rate", "without ECC", "with on-die ECC"],
        rows,
    )


def analytical_headroom() -> None:
    rows = [
        [f"{rate:.0e}", f"{protected_flip_rate(rate):.2e}", f"{protection_gain(rate):.0f}x"]
        for rate in ERROR_RATES
    ]
    print_table(
        "Analytical residual flip rate of protected outliers (N = 2 copies)",
        ["raw rate", "protected rate", "gain"],
        rows,
    )


if __name__ == "__main__":
    ecc_layout_summary()
    single_page_demo()
    accuracy_over_lifetime()
    analytical_headroom()
