"""Scenario: size the flash array for a target interactive experience.

A device vendor wants the cheapest chiplet that decodes a given model at a
target speed.  This example sweeps channel and chip counts (the paper's
Fig. 15 axes) through the unified experiment API: each candidate array is a
:class:`repro.api.CambriconBackend` with a scaled configuration, and one
:class:`repro.api.ExperimentRunner` evaluates them all concurrently — with
memoization, so re-running with a different speed target is free.
"""

from __future__ import annotations

import sys

from repro import CambriconBackend, ExperimentRunner, InferenceRequest, cambricon_llm_s
from repro.npu.buffers import BufferSpec
from repro.reporting import print_table

CHANNEL_OPTIONS = (4, 8, 16, 32)
CHIP_OPTIONS = (1, 2, 4, 8)

RUNNER = ExperimentRunner()


def candidate_backends(model: str):
    """One backend per flash-array design point that can hold the model."""
    backends = []
    for channels in CHANNEL_OPTIONS:
        for chips in CHIP_OPTIONS:
            config = cambricon_llm_s().with_flash_scale(
                channels=channels, chips_per_channel=chips
            )
            if not config.flash.can_store(75e9 if "70b" in model else 35e9):
                continue
            backends.append(CambriconBackend(config=config, energy=False))
    return backends


def explore(model: str, target_tokens_per_second: float):
    backends = candidate_backends(model)
    # One request per backend; results come back in backend order.
    results = RUNNER.run_requests(backends, [InferenceRequest(model=model)])
    rows, best = [], None
    for backend, result in zip(backends, results):
        config = backend.config
        channels = config.flash.channels
        chips = config.flash.chips_per_channel
        buffer_bytes = BufferSpec.required_weight_buffer(channels, config.page_bytes)
        if result.out_of_memory:
            continue
        meets_target = result.tokens_per_second >= target_tokens_per_second
        rows.append(
            [
                channels,
                chips,
                config.flash.total_compute_cores,
                result.tokens_per_second,
                100 * result.notes["channel_utilization"],
                buffer_bytes / 1024,
                meets_target,
            ]
        )
        if meets_target:
            cost_proxy = channels * chips
            if best is None or cost_proxy < best[0]:
                best = (cost_proxy, channels, chips, result.tokens_per_second)
    return rows, best


def main(model: str = "llama2-7b", target: float = 10.0) -> None:
    rows, best = explore(model, target)
    print_table(
        f"Design space for {model} (target {target:.0f} token/s)",
        ["channels", "chips/ch", "cores", "token/s", "channel use (%)", "NPU buffer (KiB)", "meets target"],
        rows,
    )
    if best is None:
        print("\nNo swept configuration meets the target; increase parallelism.")
    else:
        _, channels, chips, speed = best
        print(
            f"\nSmallest configuration meeting the target: {channels} channels x "
            f"{chips} chips/channel ({speed:.1f} token/s)."
        )
    info = RUNNER.cache_info()
    print(f"(runner: {info['misses']} evaluations, {info['hits']} cache hits)")


if __name__ == "__main__":
    arguments = sys.argv[1:]
    model_name = arguments[0] if arguments else "llama2-7b"
    target_speed = float(arguments[1]) if len(arguments) > 1 else 10.0
    main(model_name, target_speed)
