"""Scenario: size the flash array for a target interactive experience.

A device vendor wants the cheapest chiplet that decodes a given model at a
target speed.  This example sweeps channel and chip counts (the paper's
Fig. 15 axes), reports speed, channel utilisation and NPU buffer needs, and
picks the smallest configuration meeting the target — the kind of design
space exploration the Cambricon-LLM performance model is built for.
"""

from __future__ import annotations

import sys

from repro import InferenceEngine, cambricon_llm_s
from repro.npu.buffers import BufferSpec
from repro.reporting import print_table

CHANNEL_OPTIONS = (4, 8, 16, 32)
CHIP_OPTIONS = (1, 2, 4, 8)


def explore(model: str, target_tokens_per_second: float):
    rows = []
    best = None
    for channels in CHANNEL_OPTIONS:
        for chips in CHIP_OPTIONS:
            config = cambricon_llm_s().with_flash_scale(
                channels=channels, chips_per_channel=chips
            )
            if not config.flash.can_store(75e9 if "70b" in model else 35e9):
                continue
            engine = InferenceEngine(config)
            report = engine.decode_report(model)
            buffer_bytes = BufferSpec.required_weight_buffer(channels, config.page_bytes)
            meets_target = report.tokens_per_second >= target_tokens_per_second
            rows.append(
                [
                    channels,
                    chips,
                    config.flash.total_compute_cores,
                    report.tokens_per_second,
                    100 * report.channel_utilization,
                    buffer_bytes / 1024,
                    meets_target,
                ]
            )
            if meets_target:
                cost_proxy = channels * chips
                if best is None or cost_proxy < best[0]:
                    best = (cost_proxy, channels, chips, report.tokens_per_second)
    return rows, best


def main(model: str = "llama2-7b", target: float = 10.0) -> None:
    rows, best = explore(model, target)
    print_table(
        f"Design space for {model} (target {target:.0f} token/s)",
        ["channels", "chips/ch", "cores", "token/s", "channel use (%)", "NPU buffer (KiB)", "meets target"],
        rows,
    )
    if best is None:
        print("\nNo swept configuration meets the target; increase parallelism.")
    else:
        _, channels, chips, speed = best
        print(
            f"\nSmallest configuration meeting the target: {channels} channels x "
            f"{chips} chips/channel ({speed:.1f} token/s)."
        )


if __name__ == "__main__":
    arguments = sys.argv[1:]
    model_name = arguments[0] if arguments else "llama2-7b"
    target_speed = float(arguments[1]) if len(arguments) > 1 else 10.0
    main(model_name, target_speed)
