"""Scenario: a private on-device assistant (the paper's motivating use case).

Checks whether each Cambricon-LLM configuration can serve an interactive
personal assistant — a single-batch chat session with a growing context —
at the 3-10 token/s reading speed the introduction cites, and compares the
result against the flash-offloading and phone baselines.
"""

from __future__ import annotations

from repro import (
    FlexGenDRAM,
    FlexGenSSD,
    InferenceEngine,
    MLCLLM,
    cambricon_llm_l,
    cambricon_llm_m,
    cambricon_llm_s,
    get_model,
)
from repro.flash.address import WeightPageMap
from repro.reporting import print_table

REAL_TIME_TOKENS_PER_SECOND = 3.0
ASSISTANT_MODELS = ("llama2-7b", "llama2-13b", "llama2-70b")
CONTEXT_LENGTHS = (256, 1000, 4000)


def deployment_feasibility() -> None:
    """Can the weights and KV cache even be placed on the device?"""
    rows = []
    for model_name in ASSISTANT_MODELS:
        model = get_model(model_name)
        for name, config in (("S", cambricon_llm_s()), ("L", cambricon_llm_l())):
            page_map = WeightPageMap(config.flash, model.weight_bytes(8))
            rows.append(
                [
                    model_name,
                    f"Cam-LLM-{name}",
                    model.weight_bytes(8) / 1e9,
                    config.flash.total_capacity_bytes / 1e9,
                    page_map.die_utilization(),
                    config.npu.kv_cache_fits(model.kv_cache_bytes(4000, 16)),
                ]
            )
    print_table(
        "Placement feasibility: weights in flash, KV cache (4k context) in DRAM",
        ["model", "config", "weights (GB)", "flash capacity (GB)", "die utilisation", "KV fits DRAM"],
        rows,
    )


def interactive_latency() -> None:
    """Decode speed across context lengths and configurations."""
    engines = {
        "Cam-LLM-S": InferenceEngine(cambricon_llm_s()),
        "Cam-LLM-M": InferenceEngine(cambricon_llm_m()),
        "Cam-LLM-L": InferenceEngine(cambricon_llm_l()),
    }
    rows = []
    for model in ASSISTANT_MODELS:
        for context in CONTEXT_LENGTHS:
            speeds = [engines[key].decode_speed(model, seq_len=context) for key in engines]
            rows.append([model, context] + speeds + [speeds[-1] >= REAL_TIME_TOKENS_PER_SECOND])
    print_table(
        "Interactive decode speed (token/s) vs context length",
        ["model", "context", "Cam-LLM-S", "Cam-LLM-M", "Cam-LLM-L", "L meets 3 tok/s"],
        rows,
    )


def baseline_comparison() -> None:
    """How the alternatives fare on the same assistant workload."""
    engine_l = InferenceEngine(cambricon_llm_l())
    ssd, dram, mlc = FlexGenSSD(), FlexGenDRAM(), MLCLLM()
    rows = []
    for model in ASSISTANT_MODELS:
        mlc_result = mlc.decode_result(model)
        rows.append(
            [
                model,
                engine_l.decode_speed(model),
                ssd.decode_speed(model),
                dram.decode_speed(model),
                "OOM" if mlc_result.out_of_memory else f"{mlc_result.tokens_per_second:.2f}",
            ]
        )
    print_table(
        "Assistant decode speed (token/s): Cambricon-LLM-L vs baselines",
        ["model", "Cam-LLM-L", "FlexGen-SSD", "FlexGen-DRAM", "MLC-LLM (phone)"],
        rows,
    )


if __name__ == "__main__":
    deployment_feasibility()
    interactive_latency()
    baseline_comparison()
