"""Flash-backed KV memory: OOM, the flash rescue, and the sharded fleet.

The paper's central trade is that a working set which cannot live in
on-chip DRAM *can* live on flash — at a latency price.  This script
plays that trade out for the KV cache with `repro.memory`:

1. a prompt whose KV footprint fits neither DRAM nor flash is a true
   OOM — the scheduler refuses it up front,
2. the same DRAM budget plus a flash spill area admits the whole
   workload: the run completes, slower, and the report itemizes the
   spill/refill/read-through traffic that paid for it,
3. `size_fleet(memory=...)` scales the `MemorySpec` with each sharding
   candidate — a tp4 group pools four chips' DRAM and flash — and picks
   the fleet whose aggregate memory makes the SLO.

Run with::

    PYTHONPATH=src python examples/kv_spill.py

Everything is seeded — two runs print identical numbers.
"""

from __future__ import annotations

import random

from repro.api import InferenceRequest
from repro.fleet import ShardingSpec, size_fleet
from repro.memory import MemorySpec
from repro.serving import ContinuousBatchScheduler, PoissonWorkload, SLOSpec, simulate
from repro.units import MiB

SEED = 3
#: opt-6.7b at 16-bit KV is 512 KiB per token: a 500-token prompt
#: arrives owing 250 MiB of residency before the first decode step.
PAYLOAD = InferenceRequest(model="opt-6.7b", seq_len=500, gen_tokens=24)


def _mixed(rng: random.Random, index: int) -> InferenceRequest:
    """Stagger completions so freed DRAM refills spilled neighbours."""
    return PAYLOAD.with_overrides(gen_tokens=rng.choice([8, 24, 40, 64]))


def _run(memory: MemorySpec | None, num_requests: int = 24):
    return simulate(
        PoissonWorkload(1.0, _mixed, seed=SEED).generate(num_requests),
        "cambricon",
        ContinuousBatchScheduler(max_batch=4, memory=memory),
    )


def main() -> None:
    # -- 1. no flash: a 256 MiB prompt cannot enter 128 MiB of DRAM ---------
    flashless = MemorySpec(dram_bytes=128 * MiB, spill_capacity_bytes=0)
    try:
        _run(flashless, num_requests=1)
    except ValueError as error:
        print(f"Flashless 128 MiB chip: OOM as expected\n  ({error})\n")

    # -- 2. flash spill space turns the OOM into a latency price ------------
    plain = _run(None)
    tight = _run(MemorySpec(dram_bytes=384 * MiB))  # ~1.5 prompts of DRAM
    roomy = _run(MemorySpec(dram_bytes=2048 * MiB))
    print("One device, 24 requests, DRAM budget vs flash traffic:")
    for label, report in (("unmodeled", plain), ("2 GiB", roomy), ("384 MiB", tight)):
        memory = report.memory
        if memory is None:
            print(f"  {label:9s}: makespan {report.makespan_s:7.1f} s")
            continue
        print(
            f"  {label:9s}: makespan {report.makespan_s:7.1f} s, "
            f"spilled {memory.spill_bytes / MiB:7.1f} MiB "
            f"({memory.spill_events} events), "
            f"refilled {memory.refill_bytes / MiB:7.1f} MiB, "
            f"flash reads {memory.flash_pages_read} pages, "
            f"DRAM high water {memory.dram_high_water_bytes / MiB:.0f} MiB"
        )
    print()

    # -- 3. sharding pools memory: size_fleet skips the chip that OOMs ------
    # One chip: 128 MiB DRAM + 64 MiB of spill cannot hold a 250 MiB
    # prompt.  Four chips: the scaled spec (512 + 256 MiB) admits two at
    # a time and pays flash for the decode growth beyond them.
    kv_tight = MemorySpec(dram_bytes=128 * MiB, spill_capacity_bytes=64 * MiB)
    slo = SLOSpec(e2e_s=1000.0, min_attainment=0.9)
    sizing = size_fleet(
        "cambricon",
        _mixed,
        slo,
        target_qps=1.0,
        shardings=[ShardingSpec(), ShardingSpec(tensor_parallel=4)],
        scheduler_factory=lambda memory=None: ContinuousBatchScheduler(
            max_batch=2, memory=memory
        ),
        memory=kv_tight,
        num_requests=30,
        max_replicas=8,
        seed=SEED,
    )
    spec = sizing.sharding
    print(
        f"Sizing with a 128 MiB-per-chip MemorySpec: "
        f"{sizing.num_replicas} replicas x (tp{spec.tensor_parallel} "
        f"pp{spec.pipeline_parallel}) = {sizing.num_chips} chips"
    )
    for probe in sizing.probes:
        tag = "meets SLO" if probe.met else "misses SLO (or OOM: skipped)"
        print(
            f"  probe tp{probe.sharding.tensor_parallel} "
            f"x {probe.replicas} replicas: {tag}"
        )
    memories = [r.memory for r in sizing.report.device_reports]
    print(
        f"  winning fleet spilled {sum(m.spill_bytes for m in memories) / MiB:.1f} "
        f"MiB and refilled {sum(m.refill_bytes for m in memories) / MiB:.1f} MiB "
        "across its replicas"
    )


if __name__ == "__main__":
    main()
